//! The cross-crate call/symbol graph the interprocedural rules run over.
//!
//! Nodes are the function definitions the [`crate::parser`] extracted
//! from every in-scope file; edges are *lexical call sites* — an
//! identifier in call position inside a function body — resolved by name
//! against the workspace's own definitions. Resolution is deliberately an
//! **over-approximation** (soundness for taint beats precision):
//!
//! 1. a plain call `f(…)` resolves to every fn named `f` in the same
//!    crate, else to fns named `f` in crates the file imports;
//! 2. a path call `pronghorn_x::…::f(…)` (or a name imported by `use
//!    pronghorn_x::…::f`) resolves into crate `x`;
//! 3. a method call `.m(…)` resolves to every *method* named `m` in the
//!    same crate or any imported crate — unless the name is ambiguous
//!    (more candidates than [`AMBIGUITY_CAP`] across the workspace and
//!    none in the same crate), in which case the edge is dropped rather
//!    than connecting everything to everything (`new`, `len`, `get` would
//!    otherwise make the graph complete and every rule vacuous).
//!
//! Std/extern calls resolve to nothing: the graph only ever contains
//! workspace functions, so "reaches a taint source" always names a line
//! in this repository.

use crate::parser::{is_callable_name, FnDef, ParsedFile};
use crate::rules::FileContext;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names with more workspace-wide candidates than this resolve
/// only within the calling crate (see module docs).
pub const AMBIGUITY_CAP: usize = 6;

/// Index of a function node in the graph.
pub type NodeId = usize;

/// One function node: where it is and what it is called.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Crate the definition lives in.
    pub crate_name: String,
    /// Repo-relative file path.
    pub file: String,
    /// `Type::name` or bare `name`.
    pub qual_name: String,
    /// Bare name (the resolution key).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Visibility (`pub …`).
    pub is_pub: bool,
    /// Defined in an `impl` block.
    pub is_method: bool,
    /// Whole definition sits in test scope (test file or `#[cfg(test)]`
    /// region).
    pub in_test_scope: bool,
    /// Index of the file in the workspace file list.
    pub file_idx: usize,
    /// Index of the fn within that file's `ParsedFile::fns`.
    pub fn_idx: usize,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Callee node.
    pub to: NodeId,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes.
    pub nodes: Vec<FnNode>,
    /// Outgoing edges per node, deduplicated, in callee order.
    pub calls: Vec<Vec<CallEdge>>,
    /// Incoming edges per node (caller ids), deduplicated.
    pub callers: Vec<Vec<NodeId>>,
}

/// A raw call site lifted from a function body before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallSite {
    /// `name(…)` — plain call.
    Plain {
        /// Callee name.
        name: String,
        /// Call-site line.
        line: u32,
    },
    /// `root::…::name(…)` — path call; `root` is the first path segment.
    Path {
        /// First segment of the path (`pronghorn_store`, a type, …).
        root: String,
        /// Callee name (last segment).
        name: String,
        /// Call-site line.
        line: u32,
    },
    /// `.name(…)` — method call.
    Method {
        /// Method name.
        name: String,
        /// Call-site line.
        line: u32,
    },
}

impl CallSite {
    /// The callee's bare name.
    pub fn name(&self) -> &str {
        match self {
            CallSite::Plain { name, .. }
            | CallSite::Path { name, .. }
            | CallSite::Method { name, .. } => name,
        }
    }

    /// The call-site line.
    pub fn line(&self) -> u32 {
        match self {
            CallSite::Plain { line, .. }
            | CallSite::Path { line, .. }
            | CallSite::Method { line, .. } => *line,
        }
    }
}

/// Extracts the raw call sites inside `def`'s body (none for bodyless
/// declarations).
pub fn call_sites(parsed: &ParsedFile, def: &FnDef, src: &str) -> Vec<CallSite> {
    let Some((lo, hi)) = def.body_sig else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let n = parsed.sig.len();
    let hi = hi.min(n);
    let tok = |i: usize| &parsed.tokens[parsed.sig[i]];
    let text = |i: usize| tok(i).text(src);
    let is_punct =
        |i: usize, ch: &str| tok(i).kind == crate::lexer::TokenKind::Punct && text(i) == ch;
    for i in lo..hi {
        if tok(i).kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        // Call position: identifier immediately followed by `(`.
        if i + 1 >= hi || !is_punct(i + 1, "(") {
            continue;
        }
        let name = text(i);
        if !is_callable_name(name) {
            continue;
        }
        let line = tok(i).line;
        if i > lo && is_punct(i - 1, ".") {
            out.push(CallSite::Method {
                name: name.to_string(),
                line,
            });
        } else if i > lo + 1 && is_punct(i - 1, ":") && is_punct(i - 2, ":") {
            // Walk the path back to its first segment.
            let mut root = None;
            let mut j = i;
            while j > lo + 1 && is_punct(j - 1, ":") && is_punct(j - 2, ":") {
                if j >= lo + 3 && tok(j - 3).kind == crate::lexer::TokenKind::Ident {
                    root = Some(text(j - 3).to_string());
                    j -= 3;
                } else {
                    break; // `<T as Trait>::f(…)`, `::f(…)` — give up on the root.
                }
            }
            out.push(CallSite::Path {
                root: root.unwrap_or_default(),
                name: name.to_string(),
                line,
            });
        } else {
            out.push(CallSite::Plain {
                name: name.to_string(),
                line,
            });
        }
    }
    out
}

/// One analyzed file handed to the graph builder.
pub struct GraphFile<'a> {
    /// File context (crate, path, scopes).
    pub ctx: &'a FileContext,
    /// Source text.
    pub src: &'a str,
    /// Its parse.
    pub parsed: &'a ParsedFile,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` scope in the file.
    pub test_regions: &'a [(usize, usize)],
}

impl CallGraph {
    /// Builds the graph over `files` (one entry per in-scope source file).
    pub fn build(files: &[GraphFile<'_>]) -> CallGraph {
        let mut nodes = Vec::new();
        // (crate, name) -> node ids, and name -> node ids, for resolution.
        let mut by_crate_name: BTreeMap<(String, String), Vec<NodeId>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (file_idx, f) in files.iter().enumerate() {
            for (fn_idx, def) in f.parsed.fns.iter().enumerate() {
                let in_test_scope = f.ctx.is_test_file
                    || f.test_regions
                        .iter()
                        .any(|&(s, e)| def.span.0 >= s && def.span.0 < e);
                let id = nodes.len();
                nodes.push(FnNode {
                    crate_name: f.ctx.crate_name.clone(),
                    file: f.ctx.path.clone(),
                    qual_name: def.qual_name.clone(),
                    name: def.name.clone(),
                    line: def.line,
                    is_pub: def.is_pub,
                    is_method: def.is_method,
                    in_test_scope,
                    file_idx,
                    fn_idx,
                });
                by_crate_name
                    .entry((f.ctx.crate_name.clone(), def.name.clone()))
                    .or_default()
                    .push(id);
                by_name.entry(def.name.clone()).or_default().push(id);
            }
        }
        let mut calls: Vec<Vec<CallEdge>> = vec![Vec::new(); nodes.len()];
        for f in files {
            // Which crates this file imports (cross-crate evidence).
            let imported_crates: BTreeSet<&str> = f
                .parsed
                .uses
                .iter()
                .map(|u| u.from_crate.as_str())
                .collect();
            // Imported name -> source crates.
            let mut imported_names: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for u in &f.parsed.uses {
                imported_names
                    .entry(u.name.as_str())
                    .or_default()
                    .insert(u.from_crate.as_str());
            }
            for (fn_idx, def) in f.parsed.fns.iter().enumerate() {
                let caller = nodes
                    .iter()
                    .position(|n| {
                        n.file == f.ctx.path && n.fn_idx == fn_idx && n.qual_name == def.qual_name
                    })
                    .expect("caller node was just inserted");
                let mut out: Vec<CallEdge> = Vec::new();
                for site in call_sites(f.parsed, def, f.src) {
                    let name = site.name();
                    let line = site.line();
                    let mut targets: Vec<NodeId> = Vec::new();
                    let same_crate = by_crate_name
                        .get(&(f.ctx.crate_name.clone(), name.to_string()))
                        .cloned()
                        .unwrap_or_default();
                    match &site {
                        CallSite::Path { root, .. } => {
                            if let Some(cr) = root.strip_prefix("pronghorn_") {
                                targets.extend(
                                    by_crate_name
                                        .get(&(cr.to_string(), name.to_string()))
                                        .cloned()
                                        .unwrap_or_default(),
                                );
                            }
                            if targets.is_empty() {
                                // `Type::assoc(…)` within the crate, or a
                                // type imported from a sibling crate.
                                targets.extend(same_crate.iter().copied());
                                if targets.is_empty() {
                                    if let Some(crates) = imported_names.get(root.as_str()) {
                                        for cr in crates {
                                            targets.extend(
                                                by_crate_name
                                                    .get(&(cr.to_string(), name.to_string()))
                                                    .cloned()
                                                    .unwrap_or_default(),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        CallSite::Plain { .. } => {
                            targets.extend(same_crate.iter().copied());
                            if targets.is_empty() {
                                if let Some(crates) = imported_names.get(name) {
                                    for cr in crates {
                                        targets.extend(
                                            by_crate_name
                                                .get(&(cr.to_string(), name.to_string()))
                                                .cloned()
                                                .unwrap_or_default(),
                                        );
                                    }
                                }
                            }
                        }
                        CallSite::Method { .. } => {
                            if !same_crate.is_empty() {
                                targets.extend(same_crate.iter().copied());
                            } else {
                                let all = by_name.get(name).cloned().unwrap_or_default();
                                let candidates: Vec<NodeId> = all
                                    .into_iter()
                                    .filter(|&id| {
                                        nodes[id].is_method
                                            && imported_crates
                                                .contains(nodes[id].crate_name.as_str())
                                    })
                                    .collect();
                                if candidates.len() <= AMBIGUITY_CAP {
                                    targets.extend(candidates);
                                }
                            }
                        }
                    }
                    for to in targets {
                        if to != caller {
                            out.push(CallEdge { to, line });
                        }
                    }
                }
                out.sort_by_key(|e| (e.to, e.line));
                out.dedup_by_key(|e| e.to);
                calls[caller] = out;
            }
        }
        let mut callers: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (from, edges) in calls.iter().enumerate() {
            for e in edges {
                callers[e.to].push(from);
            }
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }
        CallGraph {
            nodes,
            calls,
            callers,
        }
    }

    /// Every node (transitively) reachable **from** any of `seeds` along
    /// call edges, including the seeds.
    pub fn reachable_from(&self, seeds: &[NodeId]) -> BTreeSet<NodeId> {
        self.flood(seeds, |id| self.calls[id].iter().map(|e| e.to).collect())
    }

    /// Every node that (transitively) **reaches** any of `seeds`,
    /// including the seeds.
    pub fn reaching(&self, seeds: &[NodeId]) -> BTreeSet<NodeId> {
        self.flood(seeds, |id| self.callers[id].clone())
    }

    fn flood(&self, seeds: &[NodeId], next: impl Fn(NodeId) -> Vec<NodeId>) -> BTreeSet<NodeId> {
        let mut seen: BTreeSet<NodeId> = seeds.iter().copied().collect();
        let mut queue: VecDeque<NodeId> = seeds.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            for n in next(id) {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen
    }

    /// Shortest call chain from `from` to any node in `targets`, as a
    /// node path `[from, …, target]`; `None` when unreachable.
    pub fn chain_to(&self, from: NodeId, targets: &BTreeSet<NodeId>) -> Option<Vec<NodeId>> {
        if targets.contains(&from) {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(id) = queue.pop_front() {
            for e in &self.calls[id] {
                if e.to != from && !prev.contains_key(&e.to) {
                    prev.insert(e.to, id);
                    if targets.contains(&e.to) {
                        let mut path = vec![e.to];
                        let mut cur = e.to;
                        while let Some(&p) = prev.get(&cur) {
                            path.push(p);
                            if p == from {
                                break;
                            }
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(e.to);
                }
            }
        }
        None
    }

    /// Shortest call chain from any node in `froms` down to `target`, as
    /// a node path `[entry, …, target]`; `None` when unreachable.
    pub fn chain_between(&self, froms: &BTreeSet<NodeId>, target: NodeId) -> Option<Vec<NodeId>> {
        if froms.contains(&target) {
            return Some(vec![target]);
        }
        // BFS backwards over caller edges from the target; the first
        // entry node found closes a shortest forward chain.
        let mut next: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::from([target]);
        while let Some(id) = queue.pop_front() {
            for &caller in &self.callers[id] {
                if caller != target && !next.contains_key(&caller) {
                    next.insert(caller, id);
                    if froms.contains(&caller) {
                        let mut path = vec![caller];
                        let mut cur = caller;
                        while let Some(&n) = next.get(&cur) {
                            path.push(n);
                            if n == target {
                                break;
                            }
                            cur = n;
                        }
                        return Some(path);
                    }
                    queue.push_back(caller);
                }
            }
        }
        None
    }

    /// The line of the first call edge `from -> to` (for reporting).
    pub fn edge_line(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.calls[from].iter().find(|e| e.to == to).map(|e| e.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn ctx(crate_name: &str, path: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            path: path.to_string(),
            is_test_file: false,
            is_crate_root: false,
            is_lib_root: false,
        }
    }

    #[test]
    fn resolves_same_crate_and_cross_crate_calls() {
        let a_src = "use pronghorn_b::helper;\n\
                     pub fn entry() { helper(); local(); }\n\
                     fn local() {}\n";
        let b_src = "pub fn helper() { leaf(); }\npub fn leaf() {}\n";
        let a_parsed = parse_file(a_src);
        let b_parsed = parse_file(b_src);
        let a_ctx = ctx("a", "crates/a/src/lib.rs");
        let b_ctx = ctx("b", "crates/b/src/lib.rs");
        let files = [
            GraphFile {
                ctx: &a_ctx,
                src: a_src,
                parsed: &a_parsed,
                test_regions: &[],
            },
            GraphFile {
                ctx: &b_ctx,
                src: b_src,
                parsed: &b_parsed,
                test_regions: &[],
            },
        ];
        let g = CallGraph::build(&files);
        let entry = g.nodes.iter().position(|n| n.name == "entry").unwrap();
        let helper = g.nodes.iter().position(|n| n.name == "helper").unwrap();
        let local = g.nodes.iter().position(|n| n.name == "local").unwrap();
        let leaf = g.nodes.iter().position(|n| n.name == "leaf").unwrap();
        let out: Vec<NodeId> = g.calls[entry].iter().map(|e| e.to).collect();
        assert!(out.contains(&helper) && out.contains(&local));
        let reach = g.reachable_from(&[entry]);
        assert!(reach.contains(&leaf));
        let reaching = g.reaching(&[leaf]);
        assert!(reaching.contains(&entry));
        let chain = g.chain_to(entry, &[leaf].into_iter().collect()).unwrap();
        assert_eq!(chain, vec![entry, helper, leaf]);
    }

    #[test]
    fn ambiguous_method_names_do_not_connect_everything() {
        // Seven crates each define a method `new`; an eighth calls `.new()`
        // — the candidate set exceeds the cap, so no edges are made.
        let defs: Vec<(String, String)> = (0..7)
            .map(|i| {
                (
                    format!("c{i}"),
                    "impl T { pub fn new() -> Self { T } }".to_string(),
                )
            })
            .collect();
        let caller_src = "use pronghorn_c0::T;\nuse pronghorn_c1::U;\nuse pronghorn_c2::V;\n\
                          use pronghorn_c3::W;\nuse pronghorn_c4::X;\nuse pronghorn_c5::Y;\n\
                          use pronghorn_c6::Z;\nfn go() { x.new(); }\n";
        let caller_parsed = parse_file(caller_src);
        let parsed: Vec<ParsedFileHolder> = defs
            .iter()
            .map(|(c, s)| ParsedFileHolder {
                ctx: ctx(c, &format!("crates/{c}/src/lib.rs")),
                src: s.clone(),
                parsed: parse_file(s),
            })
            .collect();
        let caller_ctx = ctx("caller", "crates/caller/src/lib.rs");
        let mut files: Vec<GraphFile<'_>> = parsed
            .iter()
            .map(|h| GraphFile {
                ctx: &h.ctx,
                src: &h.src,
                parsed: &h.parsed,
                test_regions: &[],
            })
            .collect();
        files.push(GraphFile {
            ctx: &caller_ctx,
            src: caller_src,
            parsed: &caller_parsed,
            test_regions: &[],
        });
        let g = CallGraph::build(&files);
        let go = g.nodes.iter().position(|n| n.name == "go").unwrap();
        assert!(g.calls[go].is_empty(), "ambiguous `.new()` must not edge");
    }

    struct ParsedFileHolder {
        ctx: FileContext,
        src: String,
        parsed: ParsedFile,
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let src = "fn f() { println!(\"{}\", g()); assert_eq!(1, 1); }\nfn g() -> u8 { 1 }\n";
        let parsed = parse_file(src);
        let c = ctx("a", "crates/a/src/lib.rs");
        let files = [GraphFile {
            ctx: &c,
            src,
            parsed: &parsed,
            test_regions: &[],
        }];
        let g = CallGraph::build(&files);
        let f = g.nodes.iter().position(|n| n.name == "f").unwrap();
        let names: Vec<&str> = g.calls[f]
            .iter()
            .map(|e| g.nodes[e.to].name.as_str())
            .collect();
        assert_eq!(names, ["g"], "only the real call, not println/assert_eq");
    }
}

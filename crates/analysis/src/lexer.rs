//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The goal is not a faithful `rustc` tokenizer but a total function from
//! arbitrary text to a token stream with three guarantees the rule engine
//! and the property tests rely on:
//!
//! 1. **Totality** — lexing never panics, whatever the input (including
//!    text that is not valid Rust, truncated literals, or lossy-decoded
//!    binary garbage);
//! 2. **Span round-trip** — tokens tile the input exactly: the first token
//!    starts at byte 0, each token starts where the previous one ended,
//!    and the last token ends at `src.len()`;
//! 3. **Comment/string opacity** — identifiers inside comments and string
//!    literals are never reported as [`TokenKind::Ident`], so a rule can
//!    match on identifier tokens without tripping over prose or test data.
//!
//! Lexical subtleties that matter for those guarantees and are handled:
//! raw strings (`r#"…"#`), byte and raw-byte strings, char literals vs
//! lifetimes (`'a'` vs `'a`), nested block comments, and numeric literals
//! adjacent to range operators (`0..n` must not lex `0.` as a float).

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// Lifetime such as `'a` (including the quote).
    Lifetime,
    /// Numeric literal, loosely scanned (suffixes included).
    Number,
    /// String, byte-string, raw-string, or char literal, quotes included.
    Str,
    /// `// …` comment, newline excluded. Doc comments (`///`, `//!`) too.
    LineComment,
    /// `/* … */` comment, possibly nested, possibly unterminated.
    BlockComment,
    /// A single punctuation character (`.`, `:`, `#`, braces, …).
    Punct,
    /// A run of whitespace.
    Whitespace,
    /// Anything else (stray non-ASCII, lone backslashes, …), one char.
    Unknown,
}

/// One lexed token: a classification plus its byte span and start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes chars while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream tiling the whole input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while cur.pos < src.len() {
        let start = cur.pos;
        let line = cur.line;
        let kind = next_kind(&mut cur);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    out
}

fn next_kind(cur: &mut Cursor<'_>) -> TokenKind {
    let c = match cur.peek() {
        Some(c) => c,
        None => {
            // Unreachable in practice (lex checks pos < len), but stay total.
            return TokenKind::Unknown;
        }
    };
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return TokenKind::Whitespace;
    }
    if c == '/' {
        match cur.peek2() {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                return TokenKind::LineComment;
            }
            Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek2()) {
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break, // unterminated: consume to EOF
                    }
                }
                return TokenKind::BlockComment;
            }
            _ => {
                cur.bump();
                return TokenKind::Punct;
            }
        }
    }
    // Raw strings / raw identifiers / byte strings, before plain idents.
    if (c == 'r' || c == 'b') && try_prefixed_literal(cur) {
        return TokenKind::Str;
    }
    if c == 'r' && cur.peek2() == Some('#') && cur.peek3().is_some_and(is_ident_start) {
        // Raw identifier `r#ident`.
        cur.bump();
        cur.bump();
        cur.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    if c.is_ascii_digit() {
        lex_number(cur);
        return TokenKind::Number;
    }
    if c == '"' {
        lex_quoted(cur, '"');
        return TokenKind::Str;
    }
    if c == '\'' {
        // Lifetime (`'a` not followed by a closing quote) vs char literal.
        let is_lifetime = cur.peek2().is_some_and(is_ident_start) && cur.peek3() != Some('\'');
        if is_lifetime {
            cur.bump();
            cur.eat_while(is_ident_continue);
            return TokenKind::Lifetime;
        }
        lex_quoted(cur, '\'');
        return TokenKind::Str;
    }
    if c.is_ascii_punctuation() {
        cur.bump();
        return TokenKind::Punct;
    }
    cur.bump();
    TokenKind::Unknown
}

/// Attempts to consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'`
/// starting at the cursor. Returns false (cursor untouched) if the shape
/// does not match.
fn try_prefixed_literal(cur: &mut Cursor<'_>) -> bool {
    let rest = &cur.src[cur.pos..];
    let mut chars = rest.chars();
    let first = chars.next();
    let mut prefix_len = 1;
    let mut raw = first == Some('r');
    let mut next = chars.next();
    if first == Some('b') {
        if next == Some('r') {
            raw = true;
            prefix_len = 2;
            next = chars.next();
        } else if next == Some('\'') {
            // Byte char literal b'…'.
            cur.bump();
            lex_quoted(cur, '\'');
            return true;
        }
    }
    if raw {
        // Count hashes after the r.
        let mut hashes = 0;
        while next == Some('#') {
            hashes += 1;
            next = chars.next();
        }
        if next != Some('"') {
            return false;
        }
        for _ in 0..prefix_len + hashes + 1 {
            cur.bump();
        }
        // Scan until `"` followed by `hashes` hash marks.
        loop {
            match cur.bump() {
                None => return true, // unterminated raw string
                Some('"') => {
                    let tail = &cur.src[cur.pos..];
                    if tail.bytes().take(hashes).filter(|&b| b == b'#').count() == hashes {
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        return true;
                    }
                }
                Some(_) => {}
            }
        }
    }
    if first == Some('b') && next == Some('"') {
        cur.bump();
        lex_quoted(cur, '"');
        return true;
    }
    false
}

/// Consumes a quoted literal with backslash escapes, starting at the
/// opening quote. Unterminated literals consume to end of input.
fn lex_quoted(cur: &mut Cursor<'_>, quote: char) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => return,
            Some('\\') => {
                cur.bump();
            }
            Some(c) if c == quote => return,
            Some(_) => {}
        }
    }
}

/// Loosely consumes a numeric literal: digits, underscores, alphanumeric
/// suffixes/prefixes (`0x…`, `1u64`, `1e9`), an exponent sign, and a
/// decimal point only when followed by a digit (so `0..n` stays a range).
fn lex_number(cur: &mut Cursor<'_>) {
    cur.bump(); // leading digit
    loop {
        match cur.peek() {
            Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                let was_exp = c == 'e' || c == 'E';
                cur.bump();
                // `1e-9` / `1E+9`: sign directly after the exponent char.
                if was_exp && matches!(cur.peek(), Some('+') | Some('-')) {
                    cur.bump();
                }
            }
            Some('.') if cur.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                cur.bump();
            }
            _ => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn spans_tile_the_input() {
        let src = "fn main() { let x = 1.5; } // done";
        let toks = lex(src);
        assert_eq!(toks.first().unwrap().start, 0);
        assert_eq!(toks.last().unwrap().end, src.len());
        for pair in toks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn idents_in_strings_and_comments_are_opaque() {
        let src = r#"let s = "HashMap"; // HashMap
        /* HashMap */ let m: HashMap<u8, u8>;"#;
        let idents: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, ["let", "s", "let", "m", "HashMap", "u8", "u8"]);
    }

    #[test]
    fn ranges_do_not_eat_the_dots() {
        let got = kinds("0..total");
        assert_eq!(
            got,
            vec![
                (TokenKind::Number, "0"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "total"),
            ]
        );
        assert_eq!(kinds("1.5")[0], (TokenKind::Number, "1.5"));
        assert_eq!(kinds("1e-9")[0], (TokenKind::Number, "1e-9"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let got = kinds("&'a str 'x' '\\n'");
        assert!(got.contains(&(TokenKind::Lifetime, "'a")));
        assert!(got.contains(&(TokenKind::Str, "'x'")));
        assert!(got.contains(&(TokenKind::Str, "'\\n'")));
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let src = "r#\"quote \" inside\"# /* outer /* inner */ still */ b\"bytes\"";
        let got = kinds(src);
        assert_eq!(got[0], (TokenKind::Str, "r#\"quote \" inside\"#"));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::BlockComment && s.contains("inner")));
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && *s == "b\"bytes\""));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"never closed", "r#\"open", "/* open", "'x", "b\"oops"] {
            let toks = lex(src);
            assert_eq!(toks.last().unwrap().end, src.len());
        }
    }

    #[test]
    fn line_numbers_advance() {
        let src = "a\nb\n  c";
        let toks: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }
}

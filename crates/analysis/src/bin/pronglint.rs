//! The `pronglint` CLI: walk the workspace, evaluate rules D1–D5, apply
//! the ratcheted baseline, and report.
//!
//! ```text
//! cargo run -p analysis --bin pronglint -- [--json] [--update-baseline]
//!     [--baseline <path>] [--root <path>] [--explain <rule>]
//!     [--validate-json <path>]
//! ```

#![forbid(unsafe_code)]

use analysis::baseline::{ratchet, Baseline};
use analysis::report;
use analysis::rules;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "pronglint — Pronghorn determinism & invariant linter

USAGE:
    cargo run -p analysis --bin pronglint -- [OPTIONS]

OPTIONS:
    --json                  emit the machine-readable JSON report
    --update-baseline       rewrite the baseline to current findings (ratchet down)
    --baseline <path>       baseline file (default: <root>/analysis/baseline.toml)
    --root <path>           workspace root (default: inferred from this crate)
    --explain <rule>        print the long-form rationale for a rule and exit
    --validate-json <path>  check a saved --json report against the schema and exit
    --help                  print this help

EXIT STATUS:
    0  no findings beyond the baseline
    1  regressions (new findings)
    2  usage or I/O error";

struct Options {
    json: bool,
    update_baseline: bool,
    baseline: Option<PathBuf>,
    root: Option<PathBuf>,
    explain: Option<String>,
    validate_json: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        json: false,
        update_baseline: false,
        baseline: None,
        root: None,
        explain: None,
        validate_json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--baseline" => {
                let v = args.next().ok_or("--baseline requires a path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = args.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--explain" => {
                let v = args.next().ok_or("--explain requires a rule id")?;
                opts.explain = Some(v);
            }
            "--validate-json" => {
                let v = args.next().ok_or("--validate-json requires a path")?;
                opts.validate_json = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("pronglint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = opts.explain {
        return match rules::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "pronglint: unknown rule `{rule}`; known rules:\n    {}",
                    rules::ALL_RULES.join("\n    ")
                );
                ExitCode::from(2)
            }
        };
    }
    if let Some(path) = opts.validate_json {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pronglint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        return match report::validate(&text) {
            Ok(()) => {
                println!(
                    "pronglint: {} conforms to schema v{}",
                    path.display(),
                    report::SCHEMA_VERSION
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pronglint: {} is off-schema: {e}", path.display());
                ExitCode::from(2)
            }
        };
    }
    // Default root: this crate lives at <root>/crates/analysis.
    let root = opts.root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("analysis").join("baseline.toml"));

    let findings = match analysis::analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pronglint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("pronglint: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("pronglint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::empty()
    };

    let result = ratchet(&findings, &baseline);

    if opts.update_baseline {
        // Capture everything currently present: known debt plus whatever
        // is new this run (the run still reports the latter as failing —
        // the baseline only takes effect from the next run on).
        let mut all = result.baselined.clone();
        all.extend(result.regressions.iter().cloned());
        let updated = Baseline::from_findings(&all);
        if let Some(parent) = baseline_path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("pronglint: cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, updated.to_toml()) {
            eprintln!("pronglint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "pronglint: baseline ratcheted to {} entr{} at {}",
            updated.len(),
            if updated.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
    }

    if opts.json {
        print!("{}", report::json(&result));
    } else {
        print!("{}", report::human(&result));
    }
    if result.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

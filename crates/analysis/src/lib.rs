//! `pronglint`: workspace-native determinism & invariant static analysis.
//!
//! Pronghorn's headline numbers are reproducible only because every policy
//! decision — EWMA updates, softmax restore sampling, pool eviction — runs
//! under a fixed-seed deterministic simulation. A single `HashMap`
//! iteration or float-reduction-order change silently invalidates every
//! `results/` artifact. This crate is the guard for that contract: a
//! hand-rolled Rust [`lexer`] (no `syn`, no network — in the spirit of the
//! `compat/` stubs), a line/context-aware [`rules`] engine enforcing the
//! D1–D5 invariants of DESIGN.md §10, a ratcheted [`baseline`] so
//! pre-existing debt burns down without blocking CI, and [`report`]
//! rendering in human and JSON form.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p analysis --bin pronglint
//! ```
//!
//! Exit status: 0 when no findings exceed the baseline, 1 on regressions,
//! 2 on usage or I/O errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod walk;
pub mod xrules;

pub use baseline::{ratchet, Baseline, Ratchet};
pub use engine::{analyze_units, SourceUnit};
pub use graph::CallGraph;
pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse_file, ParsedFile};
pub use rules::{analyze_source, ChainFrame, FileContext, Finding};
pub use walk::{classify, workspace_sources, SourceFile};

use std::io;
use std::path::Path;

/// Analyzes every in-scope source file under `root` through the full v2
/// pipeline (per-file D rules, workspace call graph, interprocedural
/// T1/C1/P1/K1, suppression audit), returning all findings sorted by
/// path and line.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let sources = workspace_sources(root)?;
    let mut units = Vec::with_capacity(sources.len());
    for file in sources {
        units.push(SourceUnit {
            src: std::fs::read_to_string(&file.abs_path)?,
            ctx: file.ctx,
        });
    }
    Ok(analyze_units(&units))
}

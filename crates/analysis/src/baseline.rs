//! The ratcheted baseline: pre-existing findings are tolerated, new ones
//! fail, fixed ones are pruned.
//!
//! The baseline file (`analysis/baseline.toml` at the workspace root)
//! records a finding **count** per `(rule, file)` pair rather than line
//! numbers, so unrelated edits that shift lines do not churn it. The
//! ratchet semantics per pair:
//!
//! - current > baselined → **regression**, pronglint exits nonzero;
//! - current = baselined → pass (the debt is known);
//! - current < baselined → pass, and `--update-baseline` rewrites the file
//!   with the lower count (a zero count prunes the entry entirely).
//!
//! The file is a restricted TOML subset (comments, `[[finding]]` array
//! headers, `key = "string" | integer`) parsed in-tree — the build
//! environment has no registry access for a real TOML crate.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt;

/// Baselined finding counts, keyed by `(rule, file)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

/// A malformed baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for BaselineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for BaselineParseError {}

impl Baseline {
    /// An empty baseline (no tolerated findings).
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Number of `(rule, file)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline tolerates nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tolerated count for a `(rule, file)` pair (0 when absent).
    pub fn tolerated(&self, rule: &str, file: &str) -> u64 {
        self.entries
            .get(&(rule.to_string(), file.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Parses the restricted-TOML baseline format.
    pub fn parse(text: &str) -> Result<Self, BaselineParseError> {
        let mut entries = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<String>, Option<u64>)> = None;
        let mut flush = |cur: &mut Option<(Option<String>, Option<String>, Option<u64>)>,
                         line_no: usize|
         -> Result<(), BaselineParseError> {
            if let Some((rule, file, count)) = cur.take() {
                match (rule, file, count) {
                    (Some(r), Some(f), Some(c)) => {
                        *entries.entry((r, f)).or_insert(0) += c;
                        Ok(())
                    }
                    _ => Err(BaselineParseError {
                        line: line_no,
                        reason: "incomplete [[finding]]: need rule, file and count".into(),
                    }),
                }
            } else {
                Ok(())
            }
        };
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[finding]]" {
                flush(&mut current, line_no)?;
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineParseError {
                    line: line_no,
                    reason: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some(entry) = current.as_mut() else {
                return Err(BaselineParseError {
                    line: line_no,
                    reason: "key outside a [[finding]] block".into(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" | "file" => {
                    let unquoted = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| BaselineParseError {
                            line: line_no,
                            reason: format!("`{key}` must be a quoted string"),
                        })?;
                    if key == "rule" {
                        entry.0 = Some(unquoted.to_string());
                    } else {
                        entry.1 = Some(unquoted.to_string());
                    }
                }
                "count" => {
                    let n: u64 = value.parse().map_err(|_| BaselineParseError {
                        line: line_no,
                        reason: format!("`count` must be a non-negative integer, got `{value}`"),
                    })?;
                    entry.2 = Some(n);
                }
                other => {
                    return Err(BaselineParseError {
                        line: line_no,
                        reason: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        let total = text.lines().count();
        flush(&mut current, total)?;
        Ok(Baseline { entries })
    }

    /// Serializes back to the baseline file format (stable order).
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# pronglint baseline — pre-existing findings being ratcheted down.\n\
             # New findings beyond these counts fail CI; fixing a finding and\n\
             # running `cargo run -p analysis --bin pronglint -- --update-baseline`\n\
             # prunes its entry. Do not add entries by hand without a reason.\n",
        );
        for ((rule, file), count) in &self.entries {
            if *count == 0 {
                continue;
            }
            out.push_str(&format!(
                "\n[[finding]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n"
            ));
        }
        out
    }

    /// Builds the baseline that exactly tolerates `findings`.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule.to_string(), f.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }
}

/// Outcome of comparing current findings against the baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ratchet {
    /// Findings in excess of the baseline — these fail the run. For a
    /// `(rule, file)` pair with `b` baselined and `c > b` current findings,
    /// the `c - b` highest-line findings are reported as new.
    pub regressions: Vec<Finding>,
    /// Findings covered by the baseline (known debt, passing).
    pub baselined: Vec<Finding>,
    /// `(rule, file)` pairs whose baselined count exceeds the current
    /// count — the baseline can be tightened (`--update-baseline`).
    pub improvements: Vec<(String, String, u64, u64)>,
}

impl Ratchet {
    /// Whether the run passes (no findings beyond the baseline).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Applies the ratchet: splits `findings` into regressions vs baselined
/// debt and reports improvements.
pub fn ratchet(findings: &[Finding], baseline: &Baseline) -> Ratchet {
    let mut by_pair: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        by_pair
            .entry((f.rule.to_string(), f.file.clone()))
            .or_default()
            .push(f.clone());
    }
    let mut out = Ratchet::default();
    for ((rule, file), mut group) in by_pair {
        group.sort();
        let tolerated = baseline.tolerated(&rule, &file) as usize;
        if group.len() > tolerated {
            out.baselined.extend_from_slice(&group[..tolerated]);
            out.regressions.extend_from_slice(&group[tolerated..]);
        } else {
            out.baselined.extend_from_slice(&group);
        }
    }
    for ((rule, file), &count) in &baseline.entries {
        let current = out
            .baselined
            .iter()
            .filter(|f| f.rule == rule && &f.file == file)
            .count() as u64;
        if current < count {
            out.improvements
                .push((rule.clone(), file.clone(), count, current));
        }
    }
    out.regressions.sort();
    out.baselined.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding::new(file.to_string(), line, rule, "m".into())
    }

    #[test]
    fn parse_round_trips() {
        let b = Baseline::from_findings(&[
            finding("panic-path", "crates/core/src/a.rs", 3),
            finding("panic-path", "crates/core/src/a.rs", 9),
            finding("unordered-iter", "crates/store/src/s.rs", 1),
        ]);
        let text = b.to_toml();
        let reparsed = Baseline::parse(&text).unwrap();
        assert_eq!(b, reparsed);
        assert_eq!(reparsed.tolerated("panic-path", "crates/core/src/a.rs"), 2);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Baseline::parse("rule = \"x\"\n").is_err()); // key outside block
        assert!(Baseline::parse("[[finding]]\nrule = \"x\"\n").is_err()); // incomplete
        assert!(Baseline::parse("[[finding]]\nrule = x\n").is_err()); // unquoted
        assert!(Baseline::parse("[[finding]]\nbogus = 1\n").is_err()); // unknown key
        assert!(Baseline::parse("[[finding]]\nrule = \"r\"\nfile = \"f\"\ncount = -1\n").is_err());
        assert!(Baseline::parse("# just a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn new_finding_regresses_baselined_passes() {
        let base = Baseline::from_findings(&[finding("panic-path", "f.rs", 3)]);
        let current = vec![
            finding("panic-path", "f.rs", 3),
            finding("panic-path", "f.rs", 8),
        ];
        let r = ratchet(&current, &base);
        assert!(!r.passed());
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].line, 8);
        assert_eq!(r.baselined.len(), 1);
    }

    #[test]
    fn fixed_finding_is_an_improvement_and_prunes_on_update() {
        let base = Baseline::from_findings(&[
            finding("panic-path", "f.rs", 3),
            finding("panic-path", "f.rs", 8),
        ]);
        let current = vec![finding("panic-path", "f.rs", 3)];
        let r = ratchet(&current, &base);
        assert!(r.passed());
        assert_eq!(r.improvements.len(), 1);
        assert_eq!(r.improvements[0].2, 2);
        assert_eq!(r.improvements[0].3, 1);
        // Updating from current findings prunes the count; a fully fixed
        // file disappears from the serialized baseline.
        let updated = Baseline::from_findings(&current);
        assert_eq!(updated.tolerated("panic-path", "f.rs"), 1);
        let fully_fixed = Baseline::from_findings(&[]);
        assert!(!fully_fixed.to_toml().contains("[[finding]]"));
    }

    #[test]
    fn distinct_rules_do_not_share_budget() {
        let base = Baseline::from_findings(&[finding("panic-path", "f.rs", 1)]);
        let current = vec![finding("unordered-iter", "f.rs", 1)];
        let r = ratchet(&current, &base);
        assert!(!r.passed(), "a different rule must not consume the budget");
    }
}

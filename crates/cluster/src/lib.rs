//! The cluster layer: deterministic N-node sharded gateway primitives.
//!
//! The platform crate simulates one node's worker pool; this crate holds
//! everything needed to shard that simulation across an N-node cluster
//! while keeping the run fully deterministic:
//!
//! - [`HashRing`] — a consistent-hash ring with virtual nodes. Routing is
//!   a pure function of `(function id, ring)`; growing the ring from `n`
//!   to `n + 1` nodes remaps only the key fraction the new node owns
//!   (≈ `1/(n+1)`), and every remapped key moves *to* the new node.
//! - [`ClusterSpec`] — the `RunConfig` knob: node count, per-node worker
//!   capacity, [`RoutingPolicy`] (pure hash vs load-aware spillover),
//!   [`PlacementPolicy`] and the remote-transfer price (the Table 5
//!   network model from `pronghorn-store`). `ClusterSpec::single_node()`
//!   is the degenerate spec whose runs are bit-identical to the
//!   single-node runner.
//! - [`BlobDirectory`] — the shared content-addressed blob namespace with
//!   per-node residency views: a restore on the node that checkpointed
//!   (or previously fetched) a snapshot is a local hit; anything else
//!   pays the remote chained-transfer price and then becomes resident.
//!   Residency refcounts are conserved and drain to zero on teardown.
//!
//! The cluster *runner* lives in `pronghorn-platform` (`run_cluster`),
//! which pumps every node through the simulation kernel; this crate has
//! no dependency on the platform and is independently testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod locality;
pub mod ring;
pub mod spec;

pub use locality::{BlobAccess, BlobDirectory, LocalityStats};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use spec::{ClusterSpec, PlacementPolicy, RoutingPolicy};

//! The cluster knob on `RunConfig`: node count, routing, placement and
//! the remote-transfer price.

use pronghorn_store::TransferModel;

/// How the sharded gateway picks a node for an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RoutingPolicy {
    /// Pure consistent hashing: every invocation of a function lands on
    /// the ring owner, saturated or not (excess requests queue there).
    Hash,
    /// Hash-first with load-aware spillover: if the ring owner has no
    /// free worker slot at arrival time, probe the ring-successor nodes
    /// in deterministic ring order and serve on the first with a free
    /// slot; if the whole cluster is busy, fall back to the owner's
    /// queue.
    LoadAware,
}

impl RoutingPolicy {
    /// Both policies, in ablation order.
    pub const ALL: [RoutingPolicy; 2] = [RoutingPolicy::Hash, RoutingPolicy::LoadAware];

    /// Stable label used in CSV/JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::Hash => "hash",
            RoutingPolicy::LoadAware => "load-aware",
        }
    }
}

/// Where a freshly checkpointed snapshot blob becomes resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlacementPolicy {
    /// Resident only on the node that took the checkpoint; other nodes
    /// pay the remote transfer on their first restore of it (and cache
    /// it thereafter).
    Local,
    /// Eagerly broadcast to every node off the critical path: all
    /// restores are local hits, at the cost of `(n-1)×` the stored bytes
    /// in background replication traffic.
    Replicate,
}

impl PlacementPolicy {
    /// Stable label used in CSV/JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::Local => "local",
            PlacementPolicy::Replicate => "replicate",
        }
    }
}

/// Cluster shape of a run: `nodes = 1` (the default) reproduces the
/// single-node runner bit for bit.
///
/// # Examples
///
/// ```
/// use pronghorn_cluster::{ClusterSpec, RoutingPolicy};
///
/// let spec = ClusterSpec::new(4)
///     .with_capacity(2)
///     .with_routing(RoutingPolicy::LoadAware);
/// assert_eq!(spec.nodes, 4);
/// assert_eq!(ClusterSpec::default(), ClusterSpec::single_node());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Physical nodes in the cluster (≥ 1).
    pub nodes: u32,
    /// Worker slots per node (≥ 1). A node serving `capacity` concurrent
    /// requests is saturated; further arrivals queue (or, under
    /// [`RoutingPolicy::LoadAware`], spill to ring successors).
    pub capacity: u32,
    /// Gateway routing policy.
    pub routing: RoutingPolicy,
    /// Snapshot placement policy.
    pub placement: PlacementPolicy,
    /// Price of moving a snapshot between nodes — the same Table 5
    /// network model the store uses (`chained_transfer_time` for composed
    /// delta chains, latency-once batching for single blobs).
    pub remote: TransferModel,
}

impl ClusterSpec {
    /// A cluster of `nodes` nodes with single-slot pools, pure hash
    /// routing, local placement and the default Table 5 remote link.
    pub fn new(nodes: u32) -> Self {
        ClusterSpec {
            nodes: nodes.max(1),
            capacity: 1,
            routing: RoutingPolicy::Hash,
            placement: PlacementPolicy::Local,
            remote: TransferModel::default(),
        }
    }

    /// The degenerate one-node spec: the path pinned bit-identical to
    /// the single-node runner.
    pub fn single_node() -> Self {
        ClusterSpec::new(1)
    }

    /// Whether this is the degenerate single-node shape.
    pub fn is_single_node(&self) -> bool {
        self.nodes == 1
    }

    /// Sets per-node worker capacity (clamped to ≥ 1).
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Sets the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the cross-node transfer model.
    pub fn with_remote(mut self, remote: TransferModel) -> Self {
        self.remote = remote;
        self
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::single_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_defaults() {
        let s = ClusterSpec::single_node();
        assert!(s.is_single_node());
        assert_eq!(s.capacity, 1);
        assert_eq!(s.routing, RoutingPolicy::Hash);
        assert_eq!(s.placement, PlacementPolicy::Local);
        assert_eq!(s.remote, TransferModel::default());
    }

    #[test]
    fn builders_clamp_and_set() {
        let s = ClusterSpec::new(0).with_capacity(0);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.capacity, 1);
        let s = ClusterSpec::new(8)
            .with_capacity(3)
            .with_routing(RoutingPolicy::LoadAware)
            .with_placement(PlacementPolicy::Replicate);
        assert_eq!(
            (s.nodes, s.capacity, s.routing, s.placement),
            (8, 3, RoutingPolicy::LoadAware, PlacementPolicy::Replicate)
        );
        assert!(!s.is_single_node());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RoutingPolicy::Hash.label(), "hash");
        assert_eq!(RoutingPolicy::LoadAware.label(), "load-aware");
        assert_eq!(PlacementPolicy::Local.label(), "local");
        assert_eq!(PlacementPolicy::Replicate.label(), "replicate");
    }
}

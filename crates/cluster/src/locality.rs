//! Per-node snapshot residency over a shared blob namespace.
//!
//! The object store itself is a shared, content-addressed namespace (the
//! paper's Object Store); what differs per node is *residency* — which
//! node already holds a materialized copy of a snapshot blob. The
//! [`BlobDirectory`] tracks, per snapshot id, the set of nodes with a
//! resident copy plus the virtual time the blob was first placed. A
//! restore on a resident node is a **local hit** (the single-node price,
//! unchanged); a restore anywhere else is a **remote miss** that pays the
//! Table 5 chained-transfer price for the composed chain, after which the
//! fetching node becomes resident too.
//!
//! Residency entries are refcounts on the shared blob: conservation
//! demands they drain to zero when the pool evicts a snapshot or the
//! cluster tears down — pinned by proptests in `tests/`.

use pronghorn_sim::{SimDuration, SimTime};
use pronghorn_store::{saturating_accumulate, TransferModel};
use std::collections::{BTreeMap, BTreeSet};

/// Cluster-wide locality counters, accumulated across a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LocalityStats {
    /// Restores served from a node-resident blob (single-node price).
    pub local_hits: u64,
    /// Restores that had to fetch the blob from a peer node.
    pub remote_misses: u64,
    /// Nominal bytes moved between nodes by remote misses.
    pub remote_bytes: u64,
    /// Total remote transfer time charged to provisioning (µs).
    pub remote_us: f64,
    /// Summed age of remotely fetched snapshots at fetch time (µs) — how
    /// far the receiving node's clock had run past the blob's placement.
    pub remote_age_us: f64,
    /// Background bytes spent by eager replication (placement policy
    /// `Replicate`); never on the provisioning path.
    pub replicated_bytes: u64,
}

impl LocalityStats {
    /// Fraction of restores served locally; 1.0 when nothing restored.
    pub fn hit_rate(&self) -> f64 {
        let total = self.local_hits + self.remote_misses;
        if total == 0 {
            1.0
        } else {
            self.local_hits as f64 / total as f64
        }
    }
}

/// One restore's locality outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobAccess {
    /// Whether the blob was already resident on the accessing node.
    pub hit: bool,
    /// Remote transfer time charged (zero on a hit).
    pub transfer: SimDuration,
    /// Age of the blob at access time (zero on a hit): the accessing
    /// node's clock minus the placement time on the origin node.
    pub age: SimDuration,
    /// Nominal bytes moved (zero on a hit).
    pub bytes: u64,
}

/// Residency state of one snapshot blob.
#[derive(Debug, Clone)]
struct BlobEntry {
    /// Virtual time the blob was first placed (checkpoint completion on
    /// the origin node's clock).
    placed_at: SimTime,
    /// Nodes holding a resident copy.
    residents: BTreeSet<u32>,
}

/// The shared blob directory: per-node residency views over one
/// content-addressed namespace.
///
/// # Examples
///
/// ```
/// use pronghorn_cluster::BlobDirectory;
/// use pronghorn_sim::SimTime;
/// use pronghorn_store::TransferModel;
///
/// let mut dir = BlobDirectory::new(4);
/// dir.record(7, 0, SimTime::from_micros(10));
/// let model = TransferModel::default();
/// // Node 0 checkpointed blob 7: restoring there is free...
/// let hit = dir.access(7, 0, 1 << 20, SimTime::from_micros(20), &model, 1);
/// assert!(hit.hit);
/// // ...while node 2 pays the remote transfer, then becomes resident.
/// let miss = dir.access(7, 2, 1 << 20, SimTime::from_micros(30), &model, 1);
/// assert!(!miss.hit && miss.bytes == 1 << 20);
/// assert!(dir.access(7, 2, 1 << 20, SimTime::from_micros(40), &model, 1).hit);
/// ```
#[derive(Debug, Clone)]
pub struct BlobDirectory {
    nodes: u32,
    blobs: BTreeMap<u64, BlobEntry>,
    stats: LocalityStats,
}

impl BlobDirectory {
    /// An empty directory for a cluster of `nodes` nodes (≥ 1).
    pub fn new(nodes: u32) -> Self {
        BlobDirectory {
            nodes: nodes.max(1),
            blobs: BTreeMap::new(),
            stats: LocalityStats::default(),
        }
    }

    /// Cluster size this directory serves.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Registers a freshly checkpointed blob as resident on `node` at
    /// time `now` (the origin node's clock). Re-recording an id resets
    /// its residency to the new origin.
    pub fn record(&mut self, id: u64, node: u32, now: SimTime) {
        let mut residents = BTreeSet::new();
        residents.insert(node);
        self.blobs.insert(
            id,
            BlobEntry {
                placed_at: now,
                residents,
            },
        );
    }

    /// Eagerly replicates `id` to every node (placement `Replicate`),
    /// charging `bytes` of background traffic per copy actually made.
    pub fn replicate(&mut self, id: u64, bytes: u64) {
        let nodes = self.nodes;
        if let Some(entry) = self.blobs.get_mut(&id) {
            for node in 0..nodes {
                if entry.residents.insert(node) {
                    saturating_accumulate(
                        "replicated_bytes",
                        &mut self.stats.replicated_bytes,
                        bytes,
                    );
                }
            }
        }
    }

    /// Whether `node` holds a resident copy of `id`.
    pub fn is_resident(&self, id: u64, node: u32) -> bool {
        self.blobs
            .get(&id)
            .is_some_and(|e| e.residents.contains(&node))
    }

    /// Resolves a restore of `id` on `node` at the node's clock `now`:
    /// a local hit if resident, otherwise a remote fetch of `bytes`
    /// nominal bytes over `remote`, priced as a `links`-link chain walk
    /// (`links = 1` for a plain blob — one latency, the batched price).
    /// After a miss the node is resident; stats accumulate either way.
    ///
    /// An id the directory has never seen (possible only if a restore
    /// precedes any recorded checkpoint of it) is adopted as resident on
    /// the accessing node and counted as a hit — there is no origin to
    /// price a transfer from.
    pub fn access(
        &mut self,
        id: u64,
        node: u32,
        bytes: u64,
        now: SimTime,
        remote: &TransferModel,
        links: usize,
    ) -> BlobAccess {
        let transfer = remote.chained_transfer_time(bytes, links.max(1));
        self.access_priced(id, node, bytes, now, transfer)
    }

    /// Like [`Self::access`], but with the miss-path transfer time priced
    /// by the caller — the storage tier prices a composed image as one
    /// batched wire-byte fetch instead of re-walking the delta chain
    /// serially across the cluster link, while `bytes` stays nominal so
    /// the Table 5 conservation law (`restore_bytes == nominal_downloaded
    /// + remote_bytes`) is unaffected by compression.
    pub fn access_priced(
        &mut self,
        id: u64,
        node: u32,
        bytes: u64,
        now: SimTime,
        transfer: SimDuration,
    ) -> BlobAccess {
        let hit = BlobAccess {
            hit: true,
            transfer: SimDuration::ZERO,
            age: SimDuration::ZERO,
            bytes: 0,
        };
        match self.blobs.get_mut(&id) {
            None => {
                self.record(id, node, now);
                self.stats.local_hits += 1;
                hit
            }
            Some(entry) if entry.residents.contains(&node) => {
                self.stats.local_hits += 1;
                hit
            }
            Some(entry) => {
                let age = now.saturating_since(entry.placed_at);
                entry.residents.insert(node);
                self.stats.remote_misses += 1;
                saturating_accumulate("remote_bytes", &mut self.stats.remote_bytes, bytes);
                self.stats.remote_us += transfer.as_micros() as f64;
                self.stats.remote_age_us += age.as_micros() as f64;
                BlobAccess {
                    hit: false,
                    transfer,
                    age,
                    bytes,
                }
            }
        }
    }

    /// Drops every residency reference of `id` (pool eviction), returning
    /// how many node copies were released.
    pub fn evict(&mut self, id: u64) -> u64 {
        self.blobs
            .remove(&id)
            .map_or(0, |e| e.residents.len() as u64)
    }

    /// Snapshot ids currently tracked.
    pub fn tracked(&self) -> usize {
        self.blobs.len()
    }

    /// Total residency references across all blobs and nodes — the
    /// cluster-wide refcount that must drain to zero on teardown.
    pub fn total_refs(&self) -> u64 {
        self.blobs.values().map(|e| e.residents.len() as u64).sum()
    }

    /// Accumulated locality counters.
    pub fn stats(&self) -> &LocalityStats {
        &self.stats
    }

    /// Releases every residency reference (cluster teardown), returning
    /// how many were dropped. Afterwards [`Self::total_refs`] is zero and
    /// no blob is tracked; stats survive for reporting.
    pub fn teardown(&mut self) -> u64 {
        let refs = self.total_refs();
        self.blobs.clear();
        refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransferModel {
        TransferModel::default()
    }

    #[test]
    fn record_then_local_access_is_a_hit() {
        let mut dir = BlobDirectory::new(2);
        dir.record(1, 0, SimTime::from_micros(5));
        let a = dir.access(1, 0, 4096, SimTime::from_micros(9), &model(), 1);
        assert!(a.hit);
        assert_eq!(a.bytes, 0);
        assert_eq!(dir.stats().local_hits, 1);
        assert_eq!(dir.stats().remote_misses, 0);
    }

    #[test]
    fn remote_access_pays_then_caches() {
        let mut dir = BlobDirectory::new(3);
        dir.record(1, 0, SimTime::from_micros(100));
        let a = dir.access(1, 2, 1 << 20, SimTime::from_micros(700), &model(), 1);
        assert!(!a.hit);
        assert_eq!(a.bytes, 1 << 20);
        assert_eq!(a.transfer, model().batched_transfer_time(1 << 20, 1));
        assert_eq!(a.age, SimDuration::from_micros(600));
        assert!(dir.is_resident(1, 2));
        let b = dir.access(1, 2, 1 << 20, SimTime::from_micros(800), &model(), 1);
        assert!(b.hit);
        assert_eq!(dir.stats().remote_bytes, 1 << 20);
        assert_eq!(dir.stats().remote_age_us, 600.0);
    }

    #[test]
    fn chained_misses_pay_per_link_latency() {
        let mut dir = BlobDirectory::new(2);
        dir.record(9, 0, SimTime::ZERO);
        let a = dir.access(9, 1, 1 << 20, SimTime::from_micros(50), &model(), 3);
        assert_eq!(a.transfer, model().chained_transfer_time(1 << 20, 3));
        assert!(a.transfer > model().chained_transfer_time(1 << 20, 1));
    }

    #[test]
    fn priced_access_charges_caller_supplied_transfer() {
        let mut dir = BlobDirectory::new(2);
        dir.record(3, 0, SimTime::ZERO);
        let custom = SimDuration::from_micros(123);
        let a = dir.access_priced(3, 1, 2048, SimTime::from_micros(10), custom);
        assert!(!a.hit);
        assert_eq!(a.transfer, custom);
        assert_eq!(a.bytes, 2048, "bytes stay nominal regardless of pricing");
        assert_eq!(dir.stats().remote_bytes, 2048);
        assert_eq!(dir.stats().remote_us, 123.0);
    }

    #[test]
    fn unknown_blob_is_adopted_as_local() {
        let mut dir = BlobDirectory::new(4);
        let a = dir.access(42, 3, 4096, SimTime::from_micros(10), &model(), 1);
        assert!(a.hit);
        assert!(dir.is_resident(42, 3));
        assert_eq!(dir.stats().remote_misses, 0);
    }

    #[test]
    fn replicate_makes_every_node_resident_once() {
        let mut dir = BlobDirectory::new(4);
        dir.record(5, 1, SimTime::ZERO);
        dir.replicate(5, 1000);
        for node in 0..4 {
            assert!(dir.is_resident(5, node));
        }
        // Three new copies (node 1 already had it); idempotent after.
        assert_eq!(dir.stats().replicated_bytes, 3000);
        dir.replicate(5, 1000);
        assert_eq!(dir.stats().replicated_bytes, 3000);
        assert_eq!(dir.total_refs(), 4);
    }

    #[test]
    fn evict_and_teardown_drain_refs_to_zero() {
        let mut dir = BlobDirectory::new(3);
        dir.record(1, 0, SimTime::ZERO);
        dir.record(2, 1, SimTime::ZERO);
        dir.access(1, 2, 100, SimTime::from_micros(1), &model(), 1);
        assert_eq!(dir.total_refs(), 3);
        assert_eq!(dir.evict(1), 2);
        assert_eq!(dir.total_refs(), 1);
        assert_eq!(dir.evict(1), 0);
        assert_eq!(dir.teardown(), 1);
        assert_eq!(dir.total_refs(), 0);
        assert_eq!(dir.tracked(), 0);
    }

    #[test]
    fn hit_rate_degenerates_to_one() {
        assert_eq!(LocalityStats::default().hit_rate(), 1.0);
        let s = LocalityStats {
            local_hits: 3,
            remote_misses: 1,
            ..LocalityStats::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }
}

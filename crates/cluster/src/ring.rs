//! Deterministic consistent-hash ring with virtual nodes.
//!
//! Each physical node contributes [`DEFAULT_VNODES`] points on a 64-bit
//! circle; a key is owned by the first point clockwise from it. Point
//! positions depend only on `(node, replica)` — never on the node count —
//! so the ring for `n` nodes is a strict subset of the ring for `n + 1`
//! nodes. That gives the classic consistent-hashing stability property:
//! adding a node steals only the keys its own points now own (≈ `1/(n+1)`
//! of the keyspace), and removing it returns exactly those keys to their
//! previous owners.

use pronghorn_sim::hash::{mix64, Fnv1a};

/// Virtual nodes per physical node. 64 points keep the per-node keyspace
/// share concentrated around `1/n` (relative spread well under 2×) while
/// the whole ring stays a few hundred entries — binary-searchable in ns.
pub const DEFAULT_VNODES: u32 = 64;

/// A consistent-hash ring over nodes `0..n`.
///
/// # Examples
///
/// ```
/// use pronghorn_cluster::HashRing;
///
/// let ring = HashRing::new(4);
/// let node = ring.route("DynamicHTML");
/// assert!(node < 4);
/// // Routing is a pure function of (fn_id, ring).
/// assert_eq!(node, HashRing::new(4).route("DynamicHTML"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// Ring points, sorted ascending by `(position, node)`. The node
    /// tiebreak keeps the order total even under (astronomically
    /// unlikely) 64-bit position collisions.
    points: Vec<(u64, u32)>,
    nodes: u32,
    vnodes: u32,
}

impl HashRing {
    /// A ring over `nodes` physical nodes with [`DEFAULT_VNODES`] virtual
    /// nodes each. `nodes` is clamped to at least 1.
    pub fn new(nodes: u32) -> Self {
        HashRing::with_vnodes(nodes, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count (clamped to ≥ 1).
    pub fn with_vnodes(nodes: u32, vnodes: u32) -> Self {
        let nodes = nodes.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity((nodes * vnodes) as usize);
        for node in 0..nodes {
            for replica in 0..vnodes {
                points.push((Self::point(node, replica), node));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            nodes,
            vnodes,
        }
    }

    /// Position of one virtual node — independent of the ring size, which
    /// is what makes ring growth stable.
    fn point(node: u32, replica: u32) -> u64 {
        let mut h = Fnv1a::new();
        h.write(b"ring");
        h.write_u64(u64::from(node));
        h.write_u64(u64::from(replica));
        mix64(h.finish())
    }

    /// Number of physical nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Virtual nodes per physical node.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The ring position of a function id — the same FNV-1a + SplitMix64
    /// derivation the RNG factory uses for stream seeds.
    pub fn key_of(fn_id: &str) -> u64 {
        let mut h = Fnv1a::new();
        h.write(fn_id.as_bytes());
        mix64(h.finish())
    }

    /// Index of the point owning `key`: the first point at or clockwise
    /// of `key`, wrapping past the top of the circle.
    fn owner_index(&self, key: u64) -> usize {
        let idx = self.points.partition_point(|&(pos, _)| pos < key);
        if idx == self.points.len() {
            0
        } else {
            idx
        }
    }

    /// The node owning ring position `key`.
    pub fn route_key(&self, key: u64) -> u32 {
        self.points[self.owner_index(key)].1
    }

    /// The node a function routes to — a pure function of
    /// `(fn_id, ring)`.
    pub fn route(&self, fn_id: &str) -> u32 {
        self.route_key(Self::key_of(fn_id))
    }

    /// Every distinct node in ring order starting from the owner of
    /// `key`. The first entry is [`Self::route_key`]; the rest is the
    /// deterministic spillover probe order a load-aware gateway walks
    /// when the primary node is saturated. Always length [`Self::nodes`].
    pub fn successors(&self, key: u64) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.nodes as usize);
        let start = self.owner_index(key);
        let mut seen = vec![false; self.nodes as usize];
        for off in 0..self.points.len() {
            let (_, node) = self.points[(start + off) % self.points.len()];
            if !seen[node as usize] {
                seen[node as usize] = true;
                order.push(node);
                if order.len() == self.nodes as usize {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(5);
        for name in ["BFS", "MatrixMult", "Uploader", "Video", "Hash"] {
            let node = ring.route(name);
            assert!(node < 5);
            assert_eq!(node, HashRing::new(5).route(name), "{name}");
        }
    }

    #[test]
    fn single_node_ring_routes_everything_to_node_zero() {
        let ring = HashRing::new(1);
        for i in 0..256u64 {
            assert_eq!(ring.route_key(mix64(i)), 0);
        }
        assert_eq!(ring.successors(HashRing::key_of("X")), vec![0]);
    }

    #[test]
    fn growth_only_moves_keys_to_the_new_node() {
        let small = HashRing::new(4);
        let big = HashRing::new(5);
        let mut moved = 0u32;
        let samples = 4096u64;
        for i in 0..samples {
            let key = mix64(i);
            let a = small.route_key(key);
            let b = big.route_key(key);
            if a != b {
                assert_eq!(b, 4, "remapped key must land on the new node");
                moved += 1;
            }
        }
        // Expected share is 1/5; the vnode spread keeps it well under 2×.
        assert!(
            f64::from(moved) / samples as f64 <= 2.0 / 5.0,
            "moved {moved} of {samples}"
        );
        assert!(moved > 0, "the new node must own something");
    }

    #[test]
    fn successors_start_at_owner_and_cover_all_nodes() {
        let ring = HashRing::new(6);
        let key = HashRing::key_of("WordCount");
        let order = ring.successors(key);
        assert_eq!(order[0], ring.route_key(key));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn nodes_and_vnodes_are_clamped_positive() {
        let ring = HashRing::with_vnodes(0, 0);
        assert_eq!(ring.nodes(), 1);
        assert_eq!(ring.vnodes(), 1);
    }

    #[test]
    fn key_shares_are_roughly_balanced() {
        let ring = HashRing::new(8);
        let mut counts = [0u32; 8];
        let samples = 8192u64;
        for i in 0..samples {
            counts[ring.route_key(mix64(i)) as usize] += 1;
        }
        let expect = samples as f64 / 8.0;
        for (node, &c) in counts.iter().enumerate() {
            let share = f64::from(c) / expect;
            assert!(
                (0.4..=2.0).contains(&share),
                "node {node} owns {share:.2}× its fair share"
            );
        }
    }
}

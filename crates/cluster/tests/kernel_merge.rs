//! Model-equivalence of the N-node kernel interleaving.
//!
//! The cluster runner drives all nodes from one global kernel. This test
//! pins the alternative decomposition — one kernel per node, merged by
//! `(time, global arrival seq)` — to the single-queue reference: for any
//! arrival set, the per-node kernels popped and merged yield exactly the
//! global kernel's pop order, under every combination of `KernelKind`s.

#![forbid(unsafe_code)]

use pronghorn_cluster::HashRing;
use pronghorn_sim::{Kernel, KernelKind, SimTime};
use proptest::prelude::*;

/// Pops everything out of `kernel`, tagging each event with its pop time.
fn drain(kernel: &mut Kernel<u64>) -> Vec<(SimTime, u64)> {
    let mut out = Vec::new();
    while let Some((at, seq)) = kernel.pop() {
        out.push((at, seq));
    }
    out
}

/// Runs one arrival set through the reference single queue and through
/// per-node queues + merge, asserting identical order.
fn check(arrivals: &[(u64, u32)], nodes: u32, reference_kind: KernelKind, node_kind: KernelKind) {
    // Reference: one global kernel; insertion order is the global seq.
    let mut global: Kernel<u64> = Kernel::new(reference_kind);
    for (seq, &(at, _)) in arrivals.iter().enumerate() {
        global.schedule(SimTime::from_micros(at), seq as u64);
    }
    let expected = drain(&mut global);

    // Sharded: one kernel per node, same global seq payloads.
    let mut shards: Vec<Kernel<u64>> = (0..nodes).map(|_| Kernel::new(node_kind)).collect();
    for (seq, &(at, node)) in arrivals.iter().enumerate() {
        shards[(node % nodes) as usize].schedule(SimTime::from_micros(at), seq as u64);
    }
    let mut merged: Vec<(SimTime, u64)> = Vec::with_capacity(arrivals.len());
    for shard in &mut shards {
        merged.extend(drain(shard));
    }
    // The single-queue reference breaks same-instant ties by insertion
    // order, which is exactly the global seq — so the merge key is
    // (time, seq).
    merged.sort_unstable_by_key(|&(at, seq)| (at, seq));

    assert_eq!(
        merged, expected,
        "merge of {nodes} {node_kind:?} shards diverged from the {reference_kind:?} reference"
    );
}

proptest! {
    /// Per-node kernels merged by (time, seq) equal the single global
    /// queue, for both kernel kinds on either side — including bursts of
    /// same-instant arrivals landing on different nodes.
    #[test]
    fn sharded_kernels_merge_to_the_single_queue_order(
        nodes in 1u32..9,
        arrivals in prop::collection::vec((0u64..50_000, any::<u32>()), 0..300),
    ) {
        for reference_kind in KernelKind::ALL {
            for node_kind in KernelKind::ALL {
                check(&arrivals, nodes, reference_kind, node_kind);
            }
        }
    }

    /// The routed decomposition (arrivals sharded by the consistent-hash
    /// ring rather than arbitrarily) is a special case of the same law.
    #[test]
    fn ring_routed_decomposition_preserves_global_order(
        nodes in 1u32..9,
        times in prop::collection::vec(0u64..10_000, 0..200),
        seed in any::<u64>(),
    ) {
        let ring = HashRing::new(nodes);
        let arrivals: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let id = format!("fn-{}", seed.wrapping_add(i as u64 % 7));
                (t, ring.route(&id))
            })
            .collect();
        check(&arrivals, nodes, KernelKind::BinaryHeap, KernelKind::TimerWheel);
    }
}

//! Conservation properties of the blob directory: residency refcounts
//! match a naive model under arbitrary operation sequences and drain to
//! zero on teardown.

#![forbid(unsafe_code)]

use pronghorn_cluster::BlobDirectory;
use pronghorn_sim::SimTime;
use pronghorn_store::TransferModel;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Op {
    /// Checkpoint blob `id` on `node` at time `at`.
    Record { id: u8, node: u32, at: u64 },
    /// Restore blob `id` on `node` at time `at`.
    Access { id: u8, node: u32, at: u64 },
    /// Broadcast blob `id` everywhere.
    Replicate { id: u8 },
    /// Pool-evict blob `id`.
    Evict { id: u8 },
}

fn op_strategy(nodes: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0..nodes, 0u64..1_000_000).prop_map(|(id, node, at)| Op::Record {
            id,
            node,
            at
        }),
        (any::<u8>(), 0..nodes, 0u64..1_000_000).prop_map(|(id, node, at)| Op::Access {
            id,
            node,
            at
        }),
        any::<u8>().prop_map(|id| Op::Replicate { id }),
        any::<u8>().prop_map(|id| Op::Evict { id }),
    ]
}

proptest! {
    /// The directory's refcounts equal a naive per-blob resident-set
    /// model after every operation; hits + misses equals accesses; and
    /// teardown releases exactly the tracked references, draining the
    /// global refcount to zero.
    #[test]
    fn refcounts_match_model_and_drain_on_teardown(
        nodes in 1u32..9,
        ops in prop::collection::vec(op_strategy(8), 0..200),
    ) {
        let model_link = TransferModel::default();
        let mut dir = BlobDirectory::new(nodes);
        let mut model: BTreeMap<u8, BTreeSet<u32>> = BTreeMap::new();
        let mut accesses = 0u64;
        for op in &ops {
            match *op {
                Op::Record { id, node, at } => {
                    let node = node % nodes;
                    dir.record(u64::from(id), node, SimTime::from_micros(at));
                    let mut set = BTreeSet::new();
                    set.insert(node);
                    model.insert(id, set);
                }
                Op::Access { id, node, at } => {
                    let node = node % nodes;
                    let a = dir.access(
                        u64::from(id),
                        node,
                        4096,
                        SimTime::from_micros(at),
                        &model_link,
                        1,
                    );
                    accesses += 1;
                    let set = model.entry(id).or_default();
                    // A miss is exactly "tracked but not resident here".
                    prop_assert_eq!(a.hit, set.is_empty() || set.contains(&node));
                    set.insert(node);
                }
                Op::Replicate { id } => {
                    dir.replicate(u64::from(id), 100);
                    if let Some(set) = model.get_mut(&id) {
                        set.extend(0..nodes);
                    }
                }
                Op::Evict { id } => {
                    let released = dir.evict(u64::from(id));
                    let expected = model.remove(&id).map_or(0, |s| s.len() as u64);
                    prop_assert_eq!(released, expected);
                }
            }
            let model_refs: u64 = model.values().map(|s| s.len() as u64).sum();
            prop_assert_eq!(dir.total_refs(), model_refs);
            prop_assert!(dir.total_refs() <= model.len() as u64 * u64::from(nodes));
        }
        let stats = *dir.stats();
        prop_assert_eq!(stats.local_hits + stats.remote_misses, accesses);
        let tracked: u64 = model.values().map(|s| s.len() as u64).sum();
        prop_assert_eq!(dir.teardown(), tracked);
        prop_assert_eq!(dir.total_refs(), 0);
        prop_assert_eq!(dir.tracked(), 0);
    }
}

//! Ring-stability properties of the consistent-hash ring.
//!
//! - Routing is a pure function of `(fn_id, ring)`.
//! - Growing the ring from `n` to `n + 1` nodes remaps at most a bounded
//!   fraction of the keyspace (expected share `1/(n+1)`), and every
//!   remapped key moves *to* the new node.
//! - Shrinking is the mirror image: only keys the removed node owned are
//!   remapped, and they return to their previous owners.

#![forbid(unsafe_code)]

use pronghorn_cluster::HashRing;
use pronghorn_sim::hash::mix64;
use proptest::prelude::*;

proptest! {
    /// Same id, same ring shape → same node, across fresh ring builds.
    #[test]
    fn routing_is_pure(nodes in 1u32..12, seed in any::<u64>()) {
        let a = HashRing::new(nodes);
        let b = HashRing::new(nodes);
        for i in 0..64u64 {
            let id = format!("fn-{}", mix64(seed.wrapping_add(i)));
            let via_a = a.route(&id);
            prop_assert_eq!(via_a, b.route(&id));
            prop_assert!(via_a < nodes);
            // route() is route_key() of the id's ring position.
            prop_assert_eq!(via_a, a.route_key(HashRing::key_of(&id)));
        }
    }

    /// Adding a node remaps at most ~its fair share of keys, all of which
    /// land on the new node.
    #[test]
    fn growth_remaps_only_a_bounded_fraction_to_the_new_node(
        nodes in 1u32..12,
        seed in any::<u64>(),
    ) {
        let small = HashRing::new(nodes);
        let big = HashRing::new(nodes + 1);
        let samples = 2048u64;
        let mut moved = 0u64;
        for i in 0..samples {
            let key = mix64(seed.wrapping_add(i));
            let before = small.route_key(key);
            let after = big.route_key(key);
            if before != after {
                prop_assert_eq!(after, nodes, "remapped keys must land on the new node");
                moved += 1;
            }
        }
        // Expected fraction 1/(n+1); 64 vnodes keep the realized share
        // within a small constant of that, bounded generously here.
        let frac = moved as f64 / samples as f64;
        let bound = (3.0 / f64::from(nodes + 1)).min(1.0) + 0.05;
        prop_assert!(frac <= bound, "remapped {:.3} of keys (bound {:.3})", frac, bound);
    }

    /// Removing a node remaps exactly the keys it owned, each back to its
    /// owner in the smaller ring.
    #[test]
    fn removal_remaps_only_the_removed_nodes_keys(
        nodes in 1u32..12,
        seed in any::<u64>(),
    ) {
        let big = HashRing::new(nodes + 1);
        let small = HashRing::new(nodes);
        for i in 0..2048u64 {
            let key = mix64(seed.wrapping_add(i));
            let before = big.route_key(key);
            let after = small.route_key(key);
            if before != after {
                prop_assert_eq!(before, nodes, "only the removed node's keys may move");
            }
            prop_assert!(after < nodes);
        }
    }

    /// The spillover probe order starts at the owner and enumerates every
    /// node exactly once, deterministically.
    #[test]
    fn successors_enumerate_all_nodes_once(nodes in 1u32..12, key in any::<u64>()) {
        let ring = HashRing::new(nodes);
        let order = ring.successors(key);
        prop_assert_eq!(order.len(), nodes as usize);
        prop_assert_eq!(order[0], ring.route_key(key));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..nodes).collect::<Vec<_>>());
        prop_assert_eq!(order, ring.successors(key));
    }
}

//! Model-equivalence property tests: the timer wheel is observationally
//! identical to the reference binary-heap queue.
//!
//! Arbitrary interleaved `schedule`/`pop`/`clear` sequences — including
//! same-instant bursts, past-clamped schedules, level-rollover-straddling
//! offsets and far-future spill timestamps — must pop in the exact same
//! `(at, seq, event)` order from both kernels, with `now`, `len` and
//! `peek_time` agreeing after every operation.

#![forbid(unsafe_code)]

use pronghorn_sim::{EventQueue, SimDuration, SimTime, TimerWheel};
use proptest::prelude::*;

/// One scripted kernel operation. `Schedule` offsets are relative to the
/// clock at execution time so that scripts stay meaningful wherever the
/// clock has advanced to.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule `burst` events `ahead` µs after the current clock.
    Schedule { ahead: u64, burst: u8 },
    /// Schedule `back` µs *before* the current clock (clamps to `now`).
    SchedulePast { back: u64 },
    /// Pop one event.
    Pop,
    /// Drop all pending events, keeping the clock.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Near offsets inside level 0/1.
        (0u64..200, 1u8..4).prop_map(|(ahead, burst)| Op::Schedule { ahead, burst }),
        // Offsets straddling the 2^6 / 2^12 / 2^18 level rollovers.
        (0u32..3, 62u64..67, 1u8..3).prop_map(|(level, near, burst)| Op::Schedule {
            ahead: near << (6 * level),
            burst,
        }),
        // Same-instant bursts at the current clock.
        (1u8..6).prop_map(|burst| Op::Schedule { ahead: 0, burst }),
        // Far-future offsets, past the 2^36 wheel horizon into the spill.
        (1u64 << 35..1u64 << 40).prop_map(|ahead| Op::Schedule { ahead, burst: 1 }),
        (0u64..5_000).prop_map(|back| Op::SchedulePast { back }),
        (0u8..4).prop_map(|_| Op::Pop),
        Just(Op::Clear),
    ]
}

proptest! {
    /// Both kernels agree on every observable after every operation.
    #[test]
    fn wheel_matches_reference_queue(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut wheel = TimerWheel::new();
        let mut queue = EventQueue::new();
        let mut tag = 0u32;
        for op in &ops {
            match *op {
                Op::Schedule { ahead, burst } => {
                    // Both clocks agree (checked below), so the absolute
                    // instants are identical for both kernels.
                    let at = wheel.now() + SimDuration::from_micros(ahead);
                    for _ in 0..burst {
                        wheel.schedule(at, tag);
                        queue.schedule(at, tag);
                        tag += 1;
                    }
                }
                Op::SchedulePast { back } => {
                    let at = SimTime::from_micros(wheel.now().as_micros().saturating_sub(back));
                    wheel.schedule(at, tag);
                    queue.schedule(at, tag);
                    tag += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.pop(), queue.pop());
                }
                Op::Clear => {
                    wheel.clear();
                    queue.clear();
                }
            }
            prop_assert_eq!(wheel.now(), queue.now());
            prop_assert_eq!(wheel.len(), queue.len());
            prop_assert_eq!(wheel.peek_time(), queue.peek_time());
        }
        // Drain whatever is left: the residual order must match.
        loop {
            let (a, b) = (wheel.pop(), queue.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Scheduling everything up front (the kernel-bench shape) pops in
    /// globally sorted `(at, seq)` order.
    #[test]
    fn bulk_schedule_pops_sorted(ats in prop::collection::vec(0u64..1u64 << 38, 1..400)) {
        let mut wheel = TimerWheel::new();
        for (i, &at) in ats.iter().enumerate() {
            wheel.schedule(SimTime::from_micros(at), i);
        }
        let mut expected: Vec<(u64, usize)> =
            ats.iter().enumerate().map(|(i, &at)| (at, i)).collect();
        expected.sort();
        let popped: Vec<(u64, usize)> = std::iter::from_fn(|| wheel.pop())
            .map(|(t, i)| (t.as_micros(), i))
            .collect();
        prop_assert_eq!(popped, expected);
    }
}

//! Reproducible named random-number streams.
//!
//! Every stochastic component of the reproduction — JIT compile-time jitter,
//! speculative-deoptimization draws, Gaussian input-size noise, the policy's
//! softmax sampling, trace arrival processes — draws from its own stream,
//! derived from a single master seed and a human-readable label. Two
//! consequences:
//!
//! 1. an experiment is bit-for-bit reproducible given its master seed;
//! 2. changing how one component consumes randomness does not perturb any
//!    other component (no accidental stream sharing), which keeps A/B policy
//!    comparisons paired on identical workload randomness.

use crate::hash::{mix64, Fnv1a};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives independent, labeled RNG streams from a master seed.
///
/// # Examples
///
/// ```
/// use pronghorn_sim::RngFactory;
/// use rand::Rng;
///
/// let factory = RngFactory::new(42);
/// let mut a = factory.stream("jit");
/// let mut b = factory.stream("jit");
/// // Same label, same seed => identical streams.
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given master seed.
    pub const fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// Returns the master seed.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives the 64-bit seed for a labeled stream.
    pub fn seed_for(&self, label: &str) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.master_seed);
        h.write(label.as_bytes());
        mix64(h.finish())
    }

    /// Opens the RNG stream for `label`.
    pub fn stream(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for(label))
    }

    /// Opens the RNG stream for `label` with a numeric discriminator, e.g.
    /// one stream per worker or per request index.
    pub fn stream_indexed(&self, label: &str, index: u64) -> SmallRng {
        let mut h = Fnv1a::new();
        h.write_u64(self.master_seed);
        h.write(label.as_bytes());
        h.write_u64(index);
        SmallRng::seed_from_u64(mix64(h.finish()))
    }

    /// Derives a child factory, namespacing every stream opened through it.
    ///
    /// Used to give each experiment cell (benchmark x policy x eviction
    /// rate) its own seed universe while sharing the workload-input streams
    /// across policies.
    pub fn child(&self, label: &str) -> RngFactory {
        RngFactory {
            master_seed: self.seed_for(label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_reproduces_stream() {
        let f = RngFactory::new(7);
        let xs: Vec<u32> = f
            .stream("a")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u32> = f
            .stream("a")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_diverge() {
        let f = RngFactory::new(7);
        assert_ne!(f.seed_for("a"), f.seed_for("b"));
        assert_ne!(f.stream("a").gen::<u64>(), f.stream("b").gen::<u64>());
    }

    #[test]
    fn different_master_seeds_diverge() {
        assert_ne!(
            RngFactory::new(1).seed_for("x"),
            RngFactory::new(2).seed_for("x")
        );
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let f = RngFactory::new(7);
        assert_ne!(
            f.stream_indexed("worker", 0).gen::<u64>(),
            f.stream_indexed("worker", 1).gen::<u64>()
        );
    }

    #[test]
    fn child_factories_namespace_labels() {
        let f = RngFactory::new(7);
        let c1 = f.child("cell-1");
        let c2 = f.child("cell-2");
        assert_ne!(c1.seed_for("inputs"), c2.seed_for("inputs"));
        // Child derivation is stable.
        assert_eq!(c1.seed_for("inputs"), f.child("cell-1").seed_for("inputs"));
    }

    #[test]
    fn label_and_index_do_not_collide_trivially() {
        let f = RngFactory::new(7);
        // "worker" + index 1 must differ from "worker1" plain label.
        assert_ne!(
            f.stream_indexed("worker", 1).gen::<u64>(),
            f.stream("worker1").gen::<u64>()
        );
    }
}

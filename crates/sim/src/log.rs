//! Bounded in-memory event log.
//!
//! Components of the platform simulator record notable transitions (worker
//! launched, snapshot taken, pool pruned, ...) into an [`EventLog`] so tests
//! and the experiment harness can assert on causality without threading
//! callbacks everywhere. The log is a bounded ring: recording is O(1) and a
//! runaway simulation cannot exhaust memory through logging.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// A single timestamped log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Virtual time at which the event happened.
    pub at: SimTime,
    /// Component that emitted the record, e.g. `"orchestrator"`.
    pub component: String,
    /// Human-readable description of the event.
    pub message: String,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.component, self.message)
    }
}

/// Bounded ring of [`LogEntry`] records, oldest evicted first.
#[derive(Debug)]
pub struct EventLog {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Creates a log retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if the log is full.
    pub fn record(&mut self, at: SimTime, component: &str, message: impl Into<String>) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(LogEntry {
            at,
            component: component.to_string(),
            message: message.into(),
        });
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Returns retained records emitted by `component`.
    pub fn by_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a LogEntry> {
        self.entries
            .iter()
            .filter(move |e| e.component == component)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of records evicted (or refused) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut log = EventLog::new(8);
        log.record(SimTime::from_micros(1), "a", "first");
        log.record(SimTime::from_micros(2), "b", "second");
        let msgs: Vec<&str> = log.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["first", "second"]);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut log = EventLog::new(2);
        for i in 0..5 {
            log.record(SimTime::from_micros(i), "c", format!("m{i}"));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let msgs: Vec<&str> = log.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["m3", "m4"]);
    }

    #[test]
    fn filters_by_component() {
        let mut log = EventLog::new(8);
        log.record(SimTime::ZERO, "worker", "launch");
        log.record(SimTime::ZERO, "pool", "prune");
        log.record(SimTime::ZERO, "worker", "evict");
        assert_eq!(log.by_component("worker").count(), 2);
        assert_eq!(log.by_component("pool").count(), 1);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = EventLog::new(0);
        log.record(SimTime::ZERO, "x", "y");
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn display_is_readable() {
        let e = LogEntry {
            at: SimTime::from_micros(1500),
            component: "gw".into(),
            message: "hello".into(),
        };
        assert_eq!(e.to_string(), "[t+1.500ms] gw: hello");
    }
}

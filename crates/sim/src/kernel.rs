//! Kernel selection: binary-heap vs timer-wheel future-event list.
//!
//! Both implementations expose the identical deterministic contract —
//! events pop in `(at, seq)` order with past schedules clamped to `now` —
//! so every simulation result is byte-identical under either. [`Kernel`]
//! is the small enum dispatcher the platform runners drive, and
//! [`KernelKind`] the knob surfaced on run configurations; the default is
//! the reference [`EventQueue`], with [`TimerWheel`] as the O(1)
//! production-scale kernel (see `results/BENCH_kernel.json`).

use crate::queue::EventQueue;
use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::fmt;

/// Which future-event-list implementation a simulation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// The reference `BinaryHeap<(at, seq)>` queue (O(log n) per op).
    #[default]
    BinaryHeap,
    /// The hierarchical timer wheel (O(1) schedule, amortized-O(1) pop).
    TimerWheel,
}

impl KernelKind {
    /// Every kernel, in report order.
    pub const ALL: [KernelKind; 2] = [KernelKind::BinaryHeap, KernelKind::TimerWheel];

    /// Stable label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::BinaryHeap => "binary-heap",
            KernelKind::TimerWheel => "timer-wheel",
        }
    }

    /// Parses a [`label`](Self::label) back into a kind.
    pub fn parse(s: &str) -> Option<KernelKind> {
        KernelKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A future-event list of either kind, behind one API.
#[derive(Debug)]
pub enum Kernel<E> {
    /// Backed by the reference [`EventQueue`].
    BinaryHeap(EventQueue<E>),
    /// Backed by the [`TimerWheel`] (boxed: the wheel's slot table is
    /// ~3 KB, far larger than the queue variant).
    TimerWheel(Box<TimerWheel<E>>),
}

impl<E> Kernel<E> {
    /// Creates an empty kernel of the given kind.
    pub fn new(kind: KernelKind) -> Self {
        match kind {
            KernelKind::BinaryHeap => Kernel::BinaryHeap(EventQueue::new()),
            KernelKind::TimerWheel => Kernel::TimerWheel(Box::default()),
        }
    }

    /// Which implementation backs this kernel.
    pub fn kind(&self) -> KernelKind {
        match self {
            Kernel::BinaryHeap(_) => KernelKind::BinaryHeap,
            Kernel::TimerWheel(_) => KernelKind::TimerWheel,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        match self {
            Kernel::BinaryHeap(q) => q.now(),
            Kernel::TimerWheel(w) => w.now(),
        }
    }

    /// Schedules `event` at `at` (past schedules clamp to `now`).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        match self {
            Kernel::BinaryHeap(q) => q.schedule(at, event),
            Kernel::TimerWheel(w) => w.schedule(at, event),
        }
    }

    /// Removes and returns the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Kernel::BinaryHeap(q) => q.pop(),
            Kernel::TimerWheel(w) => w.pop(),
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            Kernel::BinaryHeap(q) => q.peek_time(),
            Kernel::TimerWheel(w) => w.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            Kernel::BinaryHeap(q) => q.len(),
            Kernel::TimerWheel(w) => w.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        match self {
            Kernel::BinaryHeap(q) => q.clear(),
            Kernel::TimerWheel(w) => w.clear(),
        }
    }
}

impl<E> Default for Kernel<E> {
    fn default() -> Self {
        Kernel::new(KernelKind::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_labels() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(KernelKind::parse("fibonacci-heap"), None);
    }

    #[test]
    fn default_kernel_is_the_reference_queue() {
        let k: Kernel<()> = Kernel::default();
        assert_eq!(k.kind(), KernelKind::BinaryHeap);
    }

    #[test]
    fn both_kinds_honor_the_queue_contract() {
        for kind in KernelKind::ALL {
            let mut k = Kernel::new(kind);
            assert!(k.is_empty());
            k.schedule(SimTime::from_micros(20), "b");
            k.schedule(SimTime::from_micros(10), "a");
            assert_eq!(k.len(), 2);
            assert_eq!(k.peek_time(), Some(SimTime::from_micros(10)));
            assert_eq!(k.pop(), Some((SimTime::from_micros(10), "a")));
            assert_eq!(k.now(), SimTime::from_micros(10));
            k.clear();
            assert!(k.is_empty());
            assert_eq!(
                k.now(),
                SimTime::from_micros(10),
                "{kind}: clear keeps clock"
            );
        }
    }
}

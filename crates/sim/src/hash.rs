//! Dependency-free 64-bit FNV-1a hashing.
//!
//! Two layers of the workspace need a stable, deterministic hash that does
//! not change across Rust releases (unlike `std::hash::DefaultHasher`):
//!
//! - [`crate::rng::RngFactory`] derives per-stream seeds from a master seed
//!   and a stream label;
//! - the object store derives content addresses for snapshot blobs.
//!
//! FNV-1a is not cryptographic; it is used strictly for seed mixing and
//! content addressing inside a closed simulation, never for security.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use pronghorn_sim::hash::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"pronghorn");
/// let one_shot = pronghorn_sim::hash::fnv1a(b"pronghorn");
/// assert_eq!(h.finish(), one_shot);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Creates a hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs `bytes` into the hash state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Returns the current hash value.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Hashes `bytes` in one shot.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Word-folded incremental FNV-1a over 8-byte little-endian lanes.
///
/// The byte-wise [`Fnv1a`] performs one multiply per input byte, which
/// caps it near memory-copy speed divided by eight; that is far too slow
/// to sit on the checkpoint encode path for multi-megabyte payloads.
/// `Fnv1aWide` folds whole 8-byte words into the state per multiply —
/// roughly 8x the throughput — at the cost of *not* being byte-compatible
/// with [`Fnv1a`]: the two hashers produce different values for the same
/// input and must never be mixed on one artifact.
///
/// Streaming writes are chunk-boundary independent: hashing a buffer in
/// arbitrary slices yields the same value as hashing it in one shot (a
/// pending-byte buffer carries partial words across calls). `finish` is
/// non-consuming and may be called repeatedly as more data arrives.
///
/// # Examples
///
/// ```
/// use pronghorn_sim::hash::{fnv1a_wide, Fnv1aWide};
///
/// let mut h = Fnv1aWide::new();
/// h.write(b"prong");
/// h.write(b"horn!");
/// assert_eq!(h.finish(), fnv1a_wide(b"pronghorn!"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1aWide {
    state: u64,
    pending: [u8; 8],
    pending_len: usize,
    total_len: u64,
}

impl Fnv1aWide {
    /// Creates a hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv1aWide {
            state: FNV_OFFSET,
            pending: [0u8; 8],
            pending_len: 0,
            total_len: 0,
        }
    }

    #[inline]
    fn fold(state: u64, word: u64) -> u64 {
        (state ^ word).wrapping_mul(FNV_PRIME)
    }

    /// Absorbs `bytes` into the hash state.
    pub fn write(&mut self, bytes: &[u8]) {
        self.total_len += bytes.len() as u64;
        let mut rest = bytes;
        // Top up a partial word left by a previous write.
        if self.pending_len > 0 {
            let need = 8 - self.pending_len;
            let take = need.min(rest.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&rest[..take]);
            self.pending_len += take;
            rest = &rest[take..];
            if self.pending_len < 8 {
                return;
            }
            self.state = Self::fold(self.state, u64::from_le_bytes(self.pending));
            self.pending_len = 0;
        }
        let mut chunks = rest.chunks_exact(8);
        for chunk in &mut chunks {
            let mut arr = [0u8; 8];
            arr.copy_from_slice(chunk);
            self.state = Self::fold(self.state, u64::from_le_bytes(arr));
        }
        let tail = chunks.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Returns the hash of everything written so far.
    ///
    /// Folds in any partial trailing word (zero-padded) plus the total
    /// length, so `"a"` and `"a\0"` hash differently. Non-consuming:
    /// further writes may follow.
    pub fn finish(&self) -> u64 {
        let mut state = self.state;
        if self.pending_len > 0 {
            let mut arr = [0u8; 8];
            arr[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
            state = Self::fold(state, u64::from_le_bytes(arr));
        }
        Self::fold(state, self.total_len)
    }
}

impl Default for Fnv1aWide {
    fn default() -> Self {
        Fnv1aWide::new()
    }
}

/// Hashes `bytes` in one shot with the word-folded variant.
///
/// Not byte-compatible with [`fnv1a`]; see [`Fnv1aWide`].
pub fn fnv1a_wide(bytes: &[u8]) -> u64 {
    let mut h = Fnv1aWide::new();
    h.write(bytes);
    h.finish()
}

/// Mixes a 64-bit value with SplitMix64 finalization.
///
/// FNV output has weak avalanche in the low bits; routing it through a
/// SplitMix64 finalizer makes derived RNG seeds statistically independent
/// even for labels that differ in a single byte.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values from the canonical FNV test suite.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish(), fnv1a(b"hello world"));
    }

    #[test]
    fn write_u64_is_little_endian() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_changes_low_bits() {
        // Consecutive inputs must not produce consecutive outputs.
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
    }

    #[test]
    fn wide_streaming_is_chunk_boundary_independent() {
        let data: Vec<u8> = (0u16..4099).map(|i| (i % 251) as u8).collect();
        let one_shot = fnv1a_wide(&data);
        for split in [0, 1, 3, 7, 8, 9, 63, 1024, 4098, 4099] {
            let mut h = Fnv1aWide::new();
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), one_shot, "split at {split}");
        }
        // Byte-at-a-time streaming.
        let mut h = Fnv1aWide::new();
        for b in &data {
            h.write(std::slice::from_ref(b));
        }
        assert_eq!(h.finish(), one_shot);
    }

    #[test]
    fn wide_length_padding_disambiguates() {
        // Zero-padding of the final partial word must not collide with
        // explicit trailing zeros.
        assert_ne!(fnv1a_wide(b"a"), fnv1a_wide(b"a\0"));
        assert_ne!(fnv1a_wide(b""), fnv1a_wide(b"\0"));
    }

    #[test]
    fn wide_finish_is_non_consuming() {
        let mut h = Fnv1aWide::new();
        h.write(b"abc");
        let first = h.finish();
        assert_eq!(h.finish(), first);
        h.write(b"def");
        assert_eq!(h.finish(), fnv1a_wide(b"abcdef"));
    }

    #[test]
    fn wide_differs_from_byte_fnv() {
        // Documented incompatibility — they must never be mixed.
        assert_ne!(fnv1a_wide(b"pronghorn"), fnv1a(b"pronghorn"));
    }
}

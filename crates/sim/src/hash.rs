//! Dependency-free 64-bit FNV-1a hashing.
//!
//! Two layers of the workspace need a stable, deterministic hash that does
//! not change across Rust releases (unlike `std::hash::DefaultHasher`):
//!
//! - [`crate::rng::RngFactory`] derives per-stream seeds from a master seed
//!   and a stream label;
//! - the object store derives content addresses for snapshot blobs.
//!
//! FNV-1a is not cryptographic; it is used strictly for seed mixing and
//! content addressing inside a closed simulation, never for security.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use pronghorn_sim::hash::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"pronghorn");
/// let one_shot = pronghorn_sim::hash::fnv1a(b"pronghorn");
/// assert_eq!(h.finish(), one_shot);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Creates a hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs `bytes` into the hash state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Returns the current hash value.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Hashes `bytes` in one shot.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Mixes a 64-bit value with SplitMix64 finalization.
///
/// FNV output has weak avalanche in the low bits; routing it through a
/// SplitMix64 finalizer makes derived RNG seeds statistically independent
/// even for labels that differ in a single byte.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values from the canonical FNV test suite.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish(), fnv1a(b"hello world"));
    }

    #[test]
    fn write_u64_is_little_endian() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_changes_low_bits() {
        // Consecutive inputs must not produce consecutive outputs.
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
    }
}

//! Hierarchical timer wheel: an O(1) future-event list.
//!
//! [`crate::EventQueue`] keeps pending events in a binary heap, paying
//! O(log n) pointer-chasing sifts per operation. That is fine for the
//! paper's 500-invocation figure runs but dominates once a single cell
//! replays hours of production traffic (1e6+ invocations, see ROADMAP item
//! 2). [`TimerWheel`] is the classic discrete-event-simulation fix — a
//! Varghese–Lauck hierarchical timing wheel over the µs tick grid:
//!
//! - **Levels.** [`LEVELS`] levels of [`SLOTS`] slots, each level covering
//!   [`BITS`] more bits of the timestamp. An event whose timestamp first
//!   differs from the current clock in bit band `[ℓ·BITS, (ℓ+1)·BITS)`
//!   lives at level `ℓ`; level 0 slots therefore each hold exactly one
//!   µs-tick value. Timestamps differing from the clock above the wheel's
//!   [`WHEEL_BITS`]-bit horizon (~19 hours of virtual time) go to a sorted
//!   **spill** list and are merged back one epoch at a time.
//! - **Arena.** Events are nodes in a `Vec` arena chained by `u32` indices
//!   with a free list — no per-event allocation, and slot lists are plain
//!   index chains (`head`/`tail` per slot, occupancy bitmask per level).
//! - **Cascade.** When level 0 drains, the lowest occupied slot of the
//!   lowest occupied level is re-distributed ("cascaded") to lower levels.
//!   Cascading appends in list order, which preserves FIFO order among
//!   same-instant events; combined with the radix level rule this
//!   reproduces the exact `(at, seq)` total order of the reference
//!   [`crate::EventQueue`] — the two kernels are interchangeable
//!   bit-for-bit (property-tested in `tests/kernel_equivalence.rs`).
//!
//! The public API mirrors `EventQueue` exactly (`schedule`/`pop`/
//! `peek_time`/`now`/`len`/`clear`, past scheduling clamped to `now`), so
//! callers switch between the two via [`crate::Kernel`].

use crate::time::SimTime;

/// Bits of the timestamp consumed per wheel level.
pub const BITS: u32 = 6;
/// Slots per level (`2^BITS`).
pub const SLOTS: usize = 1 << BITS;
/// Number of hierarchical levels.
pub const LEVELS: usize = 6;
/// Total bits covered by the wheel; timestamps differing from the clock
/// above this band overflow to the spill list (`2^36` µs ≈ 19.1 hours).
pub const WHEEL_BITS: u32 = BITS * LEVELS as u32;

const SLOT_MASK: u64 = SLOTS as u64 - 1;
const NIL: u32 = u32::MAX;

/// One pending event in the arena. `next` chains slot lists and the free
/// list; `event` is `None` only while the node sits on the free list.
#[derive(Debug)]
struct Node<E> {
    at: u64,
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// One wheel level: per-slot intrusive list heads/tails plus an occupancy
/// bitmask so the lowest occupied slot is a single `trailing_zeros`.
#[derive(Debug)]
struct Level {
    head: [u32; SLOTS],
    tail: [u32; SLOTS],
    occupied: u64,
}

impl Level {
    fn new() -> Self {
        Level {
            head: [NIL; SLOTS],
            tail: [NIL; SLOTS],
            occupied: 0,
        }
    }

    fn reset(&mut self) {
        self.head = [NIL; SLOTS];
        self.tail = [NIL; SLOTS];
        self.occupied = 0;
    }
}

/// A deterministic future-event list with O(1) schedule and amortized-O(1)
/// pop, drop-in order-compatible with [`crate::EventQueue`].
///
/// # Examples
///
/// ```
/// use pronghorn_sim::{SimTime, TimerWheel};
///
/// let mut w = TimerWheel::new();
/// w.schedule(SimTime::from_micros(10), "late");
/// w.schedule(SimTime::from_micros(10), "later"); // same instant: FIFO
/// w.schedule(SimTime::from_micros(1), "early");
/// let order: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["early", "late", "later"]);
/// ```
#[derive(Debug)]
pub struct TimerWheel<E> {
    levels: [Level; LEVELS],
    arena: Vec<Node<E>>,
    /// Head of the arena free list (`NIL` when empty).
    free: u32,
    /// Arena indices of events beyond the wheel horizon, sorted by
    /// `(at, seq)`.
    spill: Vec<u32>,
    len: usize,
    now: u64,
    next_seq: u64,
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the clock at the origin.
    pub fn new() -> Self {
        TimerWheel {
            levels: std::array::from_fn(|_| Level::new()),
            arena: Vec::new(),
            free: NIL,
            spill: Vec::new(),
            len: 0,
            now: 0,
            next_seq: 0,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped
    /// event, never moving backwards.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.now)
    }

    /// Schedules `event` at instant `at`.
    ///
    /// Scheduling in the past is clamped to `now()`, exactly like
    /// [`crate::EventQueue::schedule`].
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.as_micros().max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.alloc(at, seq, event);
        self.len += 1;
        self.insert(idx);
    }

    /// Removes and returns the earliest event (ties FIFO by schedule
    /// order), advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Level 0 slots hold exactly one tick value each, in FIFO
            // order, so the head of the lowest occupied slot is the global
            // minimum under `(at, seq)`.
            if self.levels[0].occupied != 0 {
                let slot = self.levels[0].occupied.trailing_zeros() as usize;
                let idx = self.levels[0].head[slot];
                let next = self.arena[idx as usize].next;
                self.levels[0].head[slot] = next;
                if next == NIL {
                    self.levels[0].tail[slot] = NIL;
                    self.levels[0].occupied &= !(1u64 << slot);
                }
                let node = &mut self.arena[idx as usize];
                let at = node.at;
                let event = node.event.take().expect("pending node holds an event");
                self.release(idx);
                self.len -= 1;
                self.now = at;
                return Some((SimTime::from_micros(at), event));
            }
            // Cascade the lowest occupied slot of the lowest occupied
            // level down; it contains the minimum pending timestamp.
            if let Some(level) = (1..LEVELS).find(|&l| self.levels[l].occupied != 0) {
                self.cascade(level);
                continue;
            }
            // Wheel empty: merge the next epoch of far-future events.
            self.drain_spill_epoch();
        }
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.levels[0].occupied != 0 {
            // All events in a level-0 slot share one timestamp: the
            // clock's high bits with the slot index as the low 6 bits.
            let slot = self.levels[0].occupied.trailing_zeros() as u64;
            return Some(SimTime::from_micros((self.now & !SLOT_MASK) | slot));
        }
        for level in 1..LEVELS {
            if self.levels[level].occupied == 0 {
                continue;
            }
            let slot = self.levels[level].occupied.trailing_zeros() as usize;
            let mut idx = self.levels[level].head[slot];
            let mut min_at = u64::MAX;
            while idx != NIL {
                let node = &self.arena[idx as usize];
                min_at = min_at.min(node.at);
                idx = node.next;
            }
            return Some(SimTime::from_micros(min_at));
        }
        let head = self
            .spill
            .first()
            .copied()
            .expect("len > 0 implies an event");
        Some(SimTime::from_micros(self.arena[head as usize].at))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every pending event, keeping the clock (and the sequence
    /// counter) where they are.
    pub fn clear(&mut self) {
        for level in self.levels.iter_mut() {
            level.reset();
        }
        self.arena.clear();
        self.free = NIL;
        self.spill.clear();
        self.len = 0;
    }

    /// Takes a node off the free list or grows the arena.
    fn alloc(&mut self, at: u64, seq: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.arena[idx as usize];
            self.free = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.event = Some(event);
            idx
        } else {
            let idx = self.arena.len();
            assert!(
                idx < NIL as usize,
                "timer-wheel arena exhausted u32 indices"
            );
            self.arena.push(Node {
                at,
                seq,
                next: NIL,
                event: Some(event),
            });
            idx as u32
        }
    }

    /// Returns a popped node to the free list.
    fn release(&mut self, idx: u32) {
        let node = &mut self.arena[idx as usize];
        debug_assert!(node.event.is_none());
        node.next = self.free;
        self.free = idx;
    }

    /// Places node `idx` into the level/slot dictated by its timestamp's
    /// highest bit of difference from the clock, or into the spill list if
    /// it lies beyond the wheel horizon.
    fn insert(&mut self, idx: u32) {
        let at = self.arena[idx as usize].at;
        debug_assert!(at >= self.now);
        let diff = at ^ self.now;
        if diff >> WHEEL_BITS != 0 {
            self.spill_insert(idx);
            return;
        }
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / BITS) as usize
        };
        let slot = ((at >> (level as u32 * BITS)) & SLOT_MASK) as usize;
        let tail = self.levels[level].tail[slot];
        if tail == NIL {
            self.levels[level].head[slot] = idx;
        } else {
            self.arena[tail as usize].next = idx;
        }
        self.levels[level].tail[slot] = idx;
        self.levels[level].occupied |= 1u64 << slot;
    }

    /// Inserts into the sorted spill list, keyed by `(at, seq)`. Fresh
    /// schedules carry the largest sequence number so far, so in the
    /// common case this is an append or a short shift from the back.
    fn spill_insert(&mut self, idx: u32) {
        let key = {
            let node = &self.arena[idx as usize];
            (node.at, node.seq)
        };
        let pos = self.spill.partition_point(|&j| {
            let node = &self.arena[j as usize];
            (node.at, node.seq) <= key
        });
        self.spill.insert(pos, idx);
    }

    /// Redistributes the lowest occupied slot of `level` to lower levels.
    ///
    /// The slot's block base is at or ahead of the clock (slot indices at
    /// an occupied level are strictly greater than the clock's digit), so
    /// the clock may be advanced to the base before re-inserting — this is
    /// externally invisible because `pop` overwrites `now` with the popped
    /// event's timestamp before returning, and the base never exceeds the
    /// minimum pending timestamp.
    fn cascade(&mut self, level: usize) {
        let slot = self.levels[level].occupied.trailing_zeros() as usize;
        let shift = level as u32 * BITS;
        let span = 1u64 << (shift + BITS);
        let base = (self.now & !(span - 1)) | ((slot as u64) << shift);
        debug_assert!(base >= self.now);
        if base > self.now {
            self.now = base;
        }
        let mut idx = self.levels[level].head[slot];
        self.levels[level].head[slot] = NIL;
        self.levels[level].tail[slot] = NIL;
        self.levels[level].occupied &= !(1u64 << slot);
        // Re-insert in list order: same-instant events keep FIFO order.
        while idx != NIL {
            let next = self.arena[idx as usize].next;
            self.arena[idx as usize].next = NIL;
            self.insert(idx);
            idx = next;
        }
    }

    /// Moves the earliest epoch of spilled events into the wheel. Only
    /// called when the wheel proper is empty, so every event of the epoch
    /// is merged before any of them can be popped.
    fn drain_spill_epoch(&mut self) {
        debug_assert!(!self.spill.is_empty(), "len > 0 but wheel and spill empty");
        let head_epoch = self.arena[self.spill[0] as usize].at >> WHEEL_BITS;
        let epoch_start = head_epoch << WHEEL_BITS;
        // Spilled events always belong to epochs strictly ahead of the
        // clock's; jumping to the epoch start lands them in the wheel.
        if epoch_start > self.now {
            self.now = epoch_start;
        }
        let keep = self
            .spill
            .partition_point(|&j| self.arena[j as usize].at >> WHEEL_BITS == head_epoch);
        let rest = self.spill.split_off(keep);
        let drained = std::mem::replace(&mut self.spill, rest);
        for idx in drained {
            self.insert(idx);
        }
    }
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_micros(30), 3);
        w.schedule(SimTime::from_micros(10), 1);
        w.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            w.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_micros(10), ());
        w.pop();
        assert_eq!(w.now(), SimTime::from_micros(10));
        // Scheduling in the past clamps to now.
        w.schedule(SimTime::from_micros(3), ());
        let (at, _) = w.pop().unwrap();
        assert_eq!(at, SimTime::from_micros(10));
        assert_eq!(w.now(), SimTime::from_micros(10));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_micros(7), "x");
        assert_eq!(w.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn clear_preserves_clock() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        w.pop();
        w.schedule(SimTime::ZERO + SimDuration::from_secs(2), ());
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.now(), SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn empty_wheel_pops_none() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        assert!(w.pop().is_none());
        assert!(w.peek_time().is_none());
    }

    #[test]
    fn events_on_level_rollover_ticks_stay_ordered() {
        // Timestamps landing exactly on level boundaries: 2^6, 2^12, ...,
        // up to the wheel horizon 2^36 and one epoch past it, plus the
        // tick just before and after each boundary.
        let mut boundary_ticks = vec![0u64, 1];
        for level in 1..=LEVELS as u32 {
            let edge = 1u64 << (level * BITS);
            boundary_ticks.extend([edge - 1, edge, edge + 1]);
        }
        boundary_ticks.extend([(1u64 << WHEEL_BITS) * 2, (1u64 << WHEEL_BITS) * 2 + 1]);

        let mut w = TimerWheel::new();
        let mut q = EventQueue::new();
        // Schedule in reverse so the wheel cannot ride insertion order.
        for (i, &t) in boundary_ticks.iter().enumerate().rev() {
            w.schedule(SimTime::from_micros(t), i);
            q.schedule(SimTime::from_micros(t), i);
        }
        loop {
            let (a, b) = (w.pop(), q.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cascade_boundary_crossing_after_partial_drain() {
        // Drain up to just before a level-1 rollover, then schedule across
        // it; the new event must still pop after the pending pre-boundary
        // one scheduled earlier.
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_micros(62), "early");
        w.schedule(SimTime::from_micros(63), "edge");
        w.schedule(SimTime::from_micros(64), "rolled");
        assert_eq!(w.pop().unwrap().1, "early");
        w.schedule(SimTime::from_micros(64), "rolled-later");
        w.schedule(SimTime::from_micros(4096), "level2");
        assert_eq!(w.pop().unwrap().1, "edge");
        assert_eq!(w.pop().unwrap().1, "rolled");
        assert_eq!(w.pop().unwrap().1, "rolled-later");
        assert_eq!(w.pop().unwrap().1, "level2");
        assert!(w.pop().is_none());
    }

    #[test]
    fn spill_epochs_merge_in_order() {
        let horizon = 1u64 << WHEEL_BITS;
        let mut w = TimerWheel::new();
        // Three epochs interleaved with near events.
        w.schedule(SimTime::from_micros(3 * horizon + 7), "e3");
        w.schedule(SimTime::from_micros(horizon + 5), "e1b");
        w.schedule(SimTime::from_micros(horizon + 1), "e1a");
        w.schedule(SimTime::from_micros(10), "near");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["near", "e1a", "e1b", "e3"]);
        assert_eq!(w.now(), SimTime::from_micros(3 * horizon + 7));
        // After jumping epochs, scheduling stays consistent.
        w.schedule(SimTime::from_micros(1), "past-clamped");
        let (at, e) = w.pop().unwrap();
        assert_eq!(
            (at, e),
            (SimTime::from_micros(3 * horizon + 7), "past-clamped")
        );
    }

    #[test]
    fn interleaved_pop_and_schedule_matches_reference_queue() {
        // A deterministic pseudo-random workload cross-checked against the
        // reference BinaryHeap queue (the heavier property test lives in
        // tests/kernel_equivalence.rs).
        let mut w = TimerWheel::new();
        let mut q = EventQueue::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let step = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        for i in 0..5_000u64 {
            let r = step(&mut x);
            match r % 4 {
                0 | 1 => {
                    // Mix of near, boundary-straddling and far-future times.
                    let dt = match (r >> 8) % 4 {
                        0 => (r >> 16) % 64,
                        1 => (r >> 16) % 5_000,
                        2 => (1 << 12) - 2 + ((r >> 16) % 5),
                        _ => (r >> 16) % (1 << 38),
                    };
                    let at = w.now() + SimDuration::from_micros(dt);
                    w.schedule(at, i);
                    q.schedule(at, i);
                }
                2 => {
                    assert_eq!(w.pop(), q.pop());
                    assert_eq!(w.now(), q.now());
                }
                _ => {
                    // Past schedule: clamped to now by both kernels.
                    let at = SimTime::from_micros(w.now().as_micros().saturating_sub(r % 100));
                    w.schedule(at, i);
                    q.schedule(at, i);
                }
            }
            assert_eq!(w.len(), q.len());
            assert_eq!(w.peek_time(), q.peek_time());
        }
        loop {
            let (a, b) = (w.pop(), q.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn arena_recycles_nodes() {
        let mut w = TimerWheel::new();
        for round in 0..10u64 {
            for i in 0..100u64 {
                w.schedule(SimTime::from_micros(round * 1_000 + i), i);
            }
            while w.pop().is_some() {}
        }
        // The free list caps arena growth at the peak population.
        assert!(w.arena.len() <= 100);
    }
}

//! Deterministic time-ordered event queue.
//!
//! A thin wrapper over a binary heap keyed by `(SimTime, sequence)`. The
//! monotone sequence number gives FIFO ordering among events scheduled for
//! the same instant, which makes the simulation fully deterministic — a
//! plain `BinaryHeap<(SimTime, E)>` would break ties arbitrarily.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: ordered by time, then by insertion order.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use pronghorn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), "late");
/// q.schedule(SimTime::from_micros(10), "later"); // same instant: FIFO
/// q.schedule(SimTime::from_micros(1), "early");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["early", "late", "later"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at the origin.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped
    /// event, never moving backwards.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at instant `at`.
    ///
    /// Scheduling in the past is clamped to `now()`: the event fires
    /// immediately but time never rewinds. This matches how a real platform
    /// treats work that was due while the handler was busy.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(10));
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_micros(3), ());
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_micros(10));
        assert_eq!(q.now(), SimTime::from_micros(10));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_preserves_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        q.pop();
        q.schedule(SimTime::ZERO + SimDuration::from_secs(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
    }
}

//! A generic discrete-event simulation driver.
//!
//! [`EventQueue`] gives components raw time-ordered delivery; this driver
//! adds the standard run loop: pop an event, hand it to a handler along
//! with a [`Scheduler`] for follow-up events, repeat until the queue
//! drains or a step budget is hit. The fleet and partitioned runners use
//! the queue directly (their dispatch is trivial); the driver exists for
//! simulations with richer event vocabularies and is the crate's public
//! composition point.

use crate::kernel::{Kernel, KernelKind};
use crate::time::SimTime;

/// Scheduling handle passed to event handlers.
pub struct Scheduler<'q, E> {
    queue: &'q mut Kernel<E>,
    now: SimTime,
}

impl<E> Scheduler<'_, E> {
    /// Current virtual time (the timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a follow-up event at `at` (clamped to now, like
    /// [`crate::EventQueue::schedule`]).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained.
    Drained {
        /// Events processed.
        steps: u64,
    },
    /// The step budget was exhausted with events still pending.
    BudgetExhausted {
        /// Events processed (== the budget).
        steps: u64,
    },
}

/// A discrete-event simulation: shared state plus an event handler.
///
/// # Examples
///
/// ```
/// use pronghorn_sim::driver::Simulation;
/// use pronghorn_sim::{SimDuration, SimTime};
///
/// // Count down: each tick schedules the next until zero.
/// let mut sim = Simulation::new(3u32, |count: &mut u32, sched, ()| {
///     if *count > 0 {
///         *count -= 1;
///         let next = sched.now() + SimDuration::from_millis(1);
///         sched.schedule(next, ());
///     }
/// });
/// sim.schedule(SimTime::ZERO, ());
/// sim.run(1_000);
/// assert_eq!(*sim.state(), 0);
/// ```
pub struct Simulation<S, E, H>
where
    H: FnMut(&mut S, &mut Scheduler<'_, E>, E),
{
    state: S,
    handler: H,
    queue: Kernel<E>,
}

impl<S, E, H> Simulation<S, E, H>
where
    H: FnMut(&mut S, &mut Scheduler<'_, E>, E),
{
    /// Creates a simulation over `state` with the given event handler,
    /// running on the default (binary-heap) kernel.
    pub fn new(state: S, handler: H) -> Self {
        Simulation::with_kernel(state, handler, KernelKind::default())
    }

    /// Creates a simulation running on the given kernel. Both kernels pop
    /// in identical `(at, seq)` order, so results do not depend on the
    /// choice — only throughput does.
    pub fn with_kernel(state: S, handler: H, kind: KernelKind) -> Self {
        Simulation {
            state,
            handler,
            queue: Kernel::new(kind),
        }
    }

    /// Which kernel the simulation runs on.
    pub fn kernel_kind(&self) -> KernelKind {
        self.queue.kind()
    }

    /// Schedules an initial event.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// The simulation state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the simulation state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the queue drains or `max_steps` events were processed.
    pub fn run(&mut self, max_steps: u64) -> RunOutcome {
        let mut steps = 0;
        while steps < max_steps {
            let Some((at, event)) = self.queue.pop() else {
                return RunOutcome::Drained { steps };
            };
            steps += 1;
            let mut scheduler = Scheduler {
                queue: &mut self.queue,
                now: at,
            };
            (self.handler)(&mut self.state, &mut scheduler, event);
        }
        if self.queue.is_empty() {
            RunOutcome::Drained { steps }
        } else {
            RunOutcome::BudgetExhausted { steps }
        }
    }

    /// Consumes the simulation, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn runs_until_drained() {
        let mut sim = Simulation::new(Vec::new(), |log: &mut Vec<u64>, _sched, e: u64| {
            log.push(e);
        });
        sim.schedule(SimTime::from_micros(30), 3);
        sim.schedule(SimTime::from_micros(10), 1);
        sim.schedule(SimTime::from_micros(20), 2);
        assert_eq!(sim.run(100), RunOutcome::Drained { steps: 3 });
        assert_eq!(sim.into_state(), vec![1, 2, 3]);
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        // A chain of 10 events, each 1ms after its predecessor.
        let mut sim = Simulation::new(0u32, |count: &mut u32, sched, hop: u32| {
            *count += 1;
            if hop > 1 {
                let next = sched.now() + SimDuration::from_millis(1);
                sched.schedule(next, hop - 1);
            }
        });
        sim.schedule(SimTime::ZERO, 10);
        assert_eq!(sim.run(1_000), RunOutcome::Drained { steps: 10 });
        assert_eq!(*sim.state(), 10);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(9));
    }

    #[test]
    fn budget_stops_runaway_simulations() {
        let mut sim = Simulation::new((), |(), sched, ()| {
            let next = sched.now() + SimDuration::from_micros(1);
            sched.schedule(next, ()); // never terminates on its own
        });
        sim.schedule(SimTime::ZERO, ());
        assert_eq!(sim.run(50), RunOutcome::BudgetExhausted { steps: 50 });
        assert_eq!(sim.pending(), 1);
        // Resuming continues where it stopped.
        assert_eq!(sim.run(25), RunOutcome::BudgetExhausted { steps: 25 });
    }

    #[test]
    fn exact_budget_boundary_reports_drained() {
        let mut sim = Simulation::new(0u32, |n: &mut u32, _sched, ()| *n += 1);
        for i in 0..5 {
            sim.schedule(SimTime::from_micros(i), ());
        }
        assert_eq!(sim.run(5), RunOutcome::Drained { steps: 5 });
    }

    #[test]
    fn kernels_drive_identical_runs() {
        let run = |kind| {
            let mut sim = Simulation::with_kernel(
                Vec::new(),
                |log: &mut Vec<(SimTime, u32)>, sched, hop: u32| {
                    log.push((sched.now(), hop));
                    if hop > 0 {
                        let next = sched.now() + SimDuration::from_millis(u64::from(hop));
                        sched.schedule(next, hop - 1);
                    }
                },
                kind,
            );
            assert_eq!(sim.kernel_kind(), kind);
            sim.schedule(SimTime::from_micros(5), 8);
            sim.run(1_000);
            sim.into_state()
        };
        assert_eq!(
            run(crate::KernelKind::BinaryHeap),
            run(crate::KernelKind::TimerWheel)
        );
    }

    #[test]
    fn state_mut_allows_external_mutation() {
        let mut sim = Simulation::new(7u32, |_n: &mut u32, _s, ()| {});
        *sim.state_mut() = 42;
        assert_eq!(*sim.state(), 42);
    }
}

//! Virtual time for the simulation.
//!
//! All latencies in the Pronghorn paper are reported in microseconds (the
//! CDF x-axes of Figures 4–6), so the kernel's base unit is the microsecond.
//! [`SimTime`] is an absolute instant on the virtual timeline and
//! [`SimDuration`] a span between instants. Both are thin wrappers over
//! `u64` with saturating arithmetic: a simulation that somehow overflows the
//! clock (584 thousand years of virtual time) pins at the maximum instead of
//! wrapping, which keeps event ordering sane.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the virtual timeline, in microseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `us` microseconds after the origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the instant as microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to the nearest
    /// whole microsecond and clamping negatives to zero.
    ///
    /// Latency models produce `f64` values; this is the single point where
    /// they are quantized onto the clock.
    pub fn from_micros_f64(us: f64) -> Self {
        if us.is_nan() || us <= 0.0 {
            SimDuration(0)
        } else if us >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(us.round() as u64)
        }
    }

    /// Returns the span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns whether the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 {
            write!(f, "{:.3}s", us as f64 / 1_000_000.0)
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", us as f64 / 1_000.0)
        } else {
            write!(f, "{us}\u{b5}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let start = SimTime::from_micros(1_000);
        let later = start + SimDuration::from_millis(2);
        assert_eq!(later.as_micros(), 3_000);
        assert_eq!(later - start, SimDuration::from_millis(2));
    }

    #[test]
    fn subtraction_saturates_instead_of_wrapping() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(10);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(5));
    }

    #[test]
    fn addition_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn from_micros_f64_handles_edge_inputs() {
        assert_eq!(SimDuration::from_micros_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_micros_f64(2.6),
            SimDuration::from_micros(3)
        );
        assert_eq!(
            SimDuration::from_micros_f64(f64::INFINITY),
            SimDuration::from_micros(u64::MAX)
        );
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(SimDuration::from_micros(750).to_string(), "750\u{b5}s");
        assert_eq!(SimDuration::from_micros(75_500).to_string(), "75.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .sum();
        assert_eq!(total, SimDuration::from_millis(6));
    }

    #[test]
    fn division_by_zero_is_clamped() {
        assert_eq!(
            SimDuration::from_micros(10) / 0,
            SimDuration::from_micros(10)
        );
    }
}

//! Discrete-event simulation kernel for the Pronghorn reproduction.
//!
//! This crate is the lowest layer of the workspace. It provides:
//!
//! - [`SimTime`] / [`SimDuration`]: a virtual microsecond clock, the unit in
//!   which every latency in the paper's evaluation is reported;
//! - [`EventQueue`]: a deterministic time-ordered event queue with FIFO
//!   tie-breaking, the core of the serverless-platform simulator;
//! - [`TimerWheel`] / [`Kernel`]: a hierarchical timer-wheel kernel with
//!   the identical ordering contract (O(1) instead of O(log n) per event,
//!   for production-trace-scale replays), selectable via [`KernelKind`];
//! - [`RngFactory`]: reproducible named random-number streams, so that every
//!   source of randomness (JIT compile jitter, input-size noise, policy
//!   sampling, ...) is independently seeded and bit-for-bit replayable;
//! - [`hash`]: a dependency-free FNV-1a implementation used for seed
//!   derivation and content addressing in the object store.
//!
//! # Examples
//!
//! ```
//! use pronghorn_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(5), "second");
//! queue.schedule(SimTime::ZERO, "first");
//! assert_eq!(queue.pop().unwrap().1, "first");
//! assert_eq!(queue.pop().unwrap().1, "second");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod hash;
pub mod kernel;
pub mod log;
pub mod queue;
pub mod rng;
pub mod time;
pub mod wheel;

pub use driver::{RunOutcome, Scheduler, Simulation};
pub use kernel::{Kernel, KernelKind};
pub use log::{EventLog, LogEntry};
pub use queue::EventQueue;
pub use rng::RngFactory;
pub use time::{SimDuration, SimTime};
pub use wheel::TimerWheel;

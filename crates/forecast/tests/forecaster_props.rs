//! Forecaster convergence on constant-rate Poisson arrivals.
//!
//! Both estimators must converge to within a small ε of the true rate of
//! a homogeneous Poisson process, across rates spanning two orders of
//! magnitude and arbitrary seeds — the property the predictive
//! provisioning arms ride on.

#![forbid(unsafe_code)]

use pronghorn_forecast::{EwmaRate, Forecaster, SlidingWindowRate};
use pronghorn_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws a Poisson arrival stream of `n` events at `rate_per_s` via
/// inverse-transform exponential gaps.
fn poisson_arrivals(rate_per_s: f64, n: usize, seed: u64) -> Vec<SimTime> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t_us = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t_us += -u.ln() / (rate_per_s / 1e6);
        out.push(SimTime::from_micros(t_us as u64));
    }
    out
}

proptest! {
    /// Count-over-window converges: with ≥ 200 expected arrivals in the
    /// window, the estimate lands within 25% of the true rate (3.5σ of
    /// the Poisson counting error at n = 200).
    #[test]
    fn sliding_window_converges_on_poisson_arrivals(
        rate_per_s in 0.5f64..50.0,
        seed in 0u64..u64::MAX,
    ) {
        let window_s = 200.0 / rate_per_s;
        let mut f = SlidingWindowRate::new(SimDuration::from_micros((window_s * 1e6) as u64));
        // Burn in well past one full window.
        let arrivals = poisson_arrivals(rate_per_s, 600, seed);
        let last = *arrivals.last().expect("non-empty stream");
        for t in arrivals {
            f.observe(t);
        }
        let truth = rate_per_s / 1e6;
        let est = f.rate_per_us(last);
        prop_assert!(
            (est - truth).abs() <= truth * 0.25,
            "estimate {} vs true {} (rate {}/s)", est, truth, rate_per_s
        );
    }

    /// EWMA converges: with τ covering ≥ 200 expected arrivals and a
    /// burn-in of several τ, the decayed-count estimate lands within 30%
    /// of the true rate.
    #[test]
    fn ewma_converges_on_poisson_arrivals(
        rate_per_s in 0.5f64..50.0,
        seed in 0u64..u64::MAX,
    ) {
        let tau_s = 200.0 / rate_per_s;
        let mut f = EwmaRate::new(SimDuration::from_micros((tau_s * 1e6) as u64));
        let arrivals = poisson_arrivals(rate_per_s, 1_500, seed);
        let last = *arrivals.last().expect("non-empty stream");
        for t in arrivals {
            f.observe(t);
        }
        let truth = rate_per_s / 1e6;
        let est = f.rate_per_us(last);
        prop_assert!(
            (est - truth).abs() <= truth * 0.30,
            "estimate {} vs true {} (rate {}/s)", est, truth, rate_per_s
        );
    }

    /// Determinism: the same observation sequence always yields the same
    /// estimate, bit for bit — forecasts are pure functions of sim time.
    #[test]
    fn forecasts_are_pure_functions_of_the_observations(
        rate_per_s in 0.5f64..50.0,
        seed in 0u64..u64::MAX,
    ) {
        let arrivals = poisson_arrivals(rate_per_s, 120, seed);
        let last = *arrivals.last().expect("non-empty stream");
        let query = last + SimDuration::from_secs(30);
        let window = SimDuration::from_secs(600);
        let run = |arrivals: &[SimTime]| {
            let mut w = SlidingWindowRate::new(window);
            let mut e = EwmaRate::new(window);
            for &t in arrivals {
                w.observe(t);
                e.observe(t);
            }
            (w.rate_per_us(query), e.rate_per_us(query))
        };
        let (w1, e1) = run(&arrivals);
        let (w2, e2) = run(&arrivals);
        prop_assert_eq!(w1.to_bits(), w2.to_bits());
        prop_assert_eq!(e1.to_bits(), e2.to_bits());
    }
}

//! Horizon-optimizing pre-restore planning.
//!
//! The simple predictive arms pre-restore whenever the forecast says the
//! next arrival fits the horizon, and hold the warm worker for the full
//! horizon — maximally warm, maximally wasteful. The MPC arm instead
//! maximizes the *expected net value* of the action over the horizon: for
//! each candidate keep-alive duration it weighs the predicted
//! cold-start latency a used pre-restore saves against the keep-alive
//! memory cost of the idle image and the fixed churn of issuing at all,
//! then commits to the best positive-value candidate — a one-step
//! model-predictive-control lookahead, re-planned at every decision
//! point from the current forecast.
//!
//! One structural fact keeps the search honest: under the exponential
//! inter-arrival model the forecasters estimate, *delaying* the issue by
//! `d` scales the use probability and the expected warm time by the same
//! `e^{-λd}` factor, so a delayed issue is never strictly better than
//! issuing now or not at all. The optimization that survives is over the
//! keep-alive duration and the issue decision itself — which is exactly
//! what separates this arm from the always-eager simple arms: it
//! declines when the image is too heavy or the traffic too sparse for
//! the byte-seconds to pay for themselves.

/// Cost model for the pre-restore ↔ keep-alive trade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcModel {
    /// Critical-path latency (µs) a *used* pre-restore is expected to
    /// save: the demand faults, stale-IO penalties and warm-up the
    /// burst's first requests would otherwise pay.
    pub benefit_us: f64,
    /// Equivalent-latency cost (µs) of holding one byte of warm image
    /// idle for one second — the provider's memory price expressed in
    /// the same currency as the benefit.
    pub mem_cost_us_per_byte_s: f64,
    /// Fixed cost (µs) of issuing a pre-restore at all: the restore's
    /// store traffic and worker churn, paid whether or not the worker is
    /// ever used.
    pub issue_cost_us: f64,
}

impl Default for MpcModel {
    fn default() -> Self {
        MpcModel {
            benefit_us: 25_000.0,
            // 16 MB held warm for 60 s costs ≈ 19 ms of equivalent
            // latency: idling a full image across a minute-scale gap
            // must earn a used pre-restore to pay for itself.
            mem_cost_us_per_byte_s: 2e-5,
            issue_cost_us: 1_000.0,
        }
    }
}

/// Candidate keep-alive durations evaluated per plan, as fractions of
/// the horizon.
const CANDIDATE_STEPS: u32 = 4;

impl MpcModel {
    /// The expected-net-value-maximizing keep-alive duration (µs) for a
    /// pre-restore issued now, for a function arriving at `rate_per_us`
    /// with a warm image of `image_bytes`, bounded by `horizon_us`;
    /// `None` when no candidate has positive expected value (traffic too
    /// sparse, or the image too expensive to hold warm).
    ///
    /// For a candidate keep-alive `k`: the pre-restore is used with
    /// probability `1 − e^{−λk}` (the next arrival lands before the
    /// expiry), the image idles warm for the expected
    /// `E[min(gap, k)] = (1 − e^{−λk})/λ`, and the issue itself costs
    /// [`Self::issue_cost_us`] regardless.
    pub fn plan(&self, rate_per_us: f64, horizon_us: u64, image_bytes: u64) -> Option<u64> {
        // NaN and non-positive rates alike mean "no arrival expected".
        if rate_per_us.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || horizon_us == 0 {
            return None;
        }
        let h = horizon_us as f64;
        let mut best: Option<(u64, f64)> = None;
        for step in 1..=CANDIDATE_STEPS {
            let k = h * f64::from(step) / f64::from(CANDIDATE_STEPS);
            let p_used = 1.0 - (-rate_per_us * k).exp();
            let warm_s = p_used / rate_per_us / 1e6;
            let net = p_used * self.benefit_us
                - image_bytes as f64 * warm_s * self.mem_cost_us_per_byte_s
                - self.issue_cost_us;
            // `>=` so that numerical ties (p_used saturated at 1 under
            // dense traffic) resolve to the longest keep-alive, whose
            // true use probability is epsilon higher.
            let improves = match best {
                None => net > 0.0,
                Some((_, b)) => net >= b,
            };
            if improves {
                best = Some((k as u64, net));
            }
        }
        best.map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: u64 = 120_000_000; // 2 minutes

    #[test]
    fn dense_traffic_plans_the_full_horizon() {
        let m = MpcModel::default();
        // One arrival per second, 16 MB image: the arrival is all but
        // certain and the expected warm time is a second — every longer
        // keep-alive adds use probability at almost no cost.
        assert_eq!(m.plan(1e-6, HORIZON, 16 << 20), Some(HORIZON));
    }

    #[test]
    fn sparse_traffic_declines() {
        let m = MpcModel::default();
        // One arrival per hour against a 2-minute horizon: P(used) ≈ 3%,
        // nowhere near the keep-alive cost of a 64 MB image.
        assert_eq!(m.plan(1.0 / 3.6e9, HORIZON, 64 << 20), None);
        // No forecast at all declines outright.
        assert_eq!(m.plan(0.0, HORIZON, 16 << 20), None);
        assert_eq!(m.plan(f64::NAN, HORIZON, 16 << 20), None);
    }

    #[test]
    fn heavy_images_decline_where_light_ones_plan() {
        let m = MpcModel::default();
        let rate = 1.0 / 60e6; // one arrival per minute
        assert!(m.plan(rate, HORIZON, 1 << 20).is_some());
        // Same traffic, 512 MB image: the byte-seconds outweigh the
        // saved cold start — the eager arms would still pre-restore
        // here; MPC is the arm that knows better.
        assert_eq!(m.plan(rate, HORIZON, 512 << 20), None);
    }

    #[test]
    fn issue_cost_filters_near_worthless_plans() {
        let free_churn = MpcModel {
            issue_cost_us: 0.0,
            ..MpcModel::default()
        };
        let m = MpcModel::default();
        // A gap ~40× the horizon with a weightless image: P(used) ≈ 2.5%,
        // worth ~600 µs — positive without churn, filtered with it.
        let rate = 1.0 / 4.8e9;
        assert!(free_churn.plan(rate, HORIZON, 0).is_some());
        assert_eq!(m.plan(rate, HORIZON, 0), None);
    }

    #[test]
    fn zero_horizon_declines() {
        assert_eq!(MpcModel::default().plan(1e-6, 0, 0), None);
    }
}

//! The provisioning policy knob and its runtime decision state.

use crate::forecaster::{EwmaRate, Forecaster, SlidingWindowRate};
use crate::mpc::MpcModel;
use pronghorn_sim::{SimDuration, SimTime};

/// Which estimator a predictive run forecasts with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForecasterKind {
    /// Count-over-trailing-window rate ([`SlidingWindowRate`]).
    SlidingWindow,
    /// Exponentially-decayed rate ([`EwmaRate`]).
    Ewma,
    /// EWMA forecast driving the horizon-optimizing [`MpcModel`] planner.
    Mpc,
}

impl ForecasterKind {
    /// Every kind, in ablation order.
    pub const ALL: [ForecasterKind; 3] = [
        ForecasterKind::SlidingWindow,
        ForecasterKind::Ewma,
        ForecasterKind::Mpc,
    ];

    /// Stable display name.
    pub fn label(self) -> &'static str {
        match self {
            ForecasterKind::SlidingWindow => "sliding-window",
            ForecasterKind::Ewma => "ewma",
            ForecasterKind::Mpc => "mpc",
        }
    }

    /// Parses a [`Self::label`] back into a kind.
    pub fn parse(s: &str) -> Option<ForecasterKind> {
        ForecasterKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// The estimator's memory, as a multiple of the provisioning horizon: the
/// forecast must remember traffic across idle gaps several horizons long,
/// or every inter-burst gap would reset it to "no traffic".
const ESTIMATOR_MEMORY_FACTOR: u64 = 16;

/// The proactive-provisioning policy carried on a run configuration —
/// orthogonal to the reactive checkpoint policy it runs alongside.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum ProvisionPolicy {
    /// Purely reactive provisioning (the default): workers exist only in
    /// response to arrivals. Byte-identical to runs predating this knob.
    #[default]
    Disabled,
    /// Forecast arrivals and pre-restore workers ahead of predicted load.
    Predictive {
        /// The arrival-rate estimator.
        forecaster: ForecasterKind,
        /// Keep-alive horizon (µs): how far ahead a forecast may reach,
        /// and how long an unused pre-restored worker is held warm
        /// before it is retired as wasted.
        horizon_us: u64,
        /// Maximum concurrently outstanding (issued, not yet used or
        /// wasted) pre-restored workers.
        budget: u32,
    },
}

impl ProvisionPolicy {
    /// The default predictive configuration for `forecaster`: a 2-minute
    /// horizon and a single-worker budget.
    pub fn predictive(forecaster: ForecasterKind) -> Self {
        ProvisionPolicy::Predictive {
            forecaster,
            horizon_us: 120_000_000,
            budget: 1,
        }
    }

    /// Whether the policy issues pre-restores.
    pub fn enabled(&self) -> bool {
        !matches!(self, ProvisionPolicy::Disabled)
    }

    /// Stable display name (the ablation's arm label).
    pub fn label(&self) -> &'static str {
        match self {
            ProvisionPolicy::Disabled => "reactive",
            ProvisionPolicy::Predictive { forecaster, .. } => forecaster.label(),
        }
    }
}

/// Pre-restore accounting a run reports per arm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProvisionStats {
    /// Pre-restores issued (workers warmed ahead of an arrival).
    pub pre_restores_issued: u64,
    /// Pre-restored workers that served at least one request.
    pub pre_restores_used: u64,
    /// Pre-restored workers retired without serving (horizon expiry or
    /// end of run).
    pub pre_restores_wasted: u64,
    /// Keep-alive cost: warm image bytes × seconds held idle between the
    /// pre-restore and its first request (or its wasted retirement).
    pub keepalive_byte_s: f64,
}

impl ProvisionStats {
    /// Fraction of issued pre-restores that served a request; 1.0 when
    /// none were issued (nothing was wasted).
    pub fn hit_rate(&self) -> f64 {
        if self.pre_restores_issued == 0 {
            1.0
        } else {
            self.pre_restores_used as f64 / self.pre_restores_issued as f64
        }
    }
}

/// A committed pre-restore decision: when to issue it, and how long the
/// warmed worker is held before expiring as wasted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreRestorePlan {
    /// Kernel time at which to issue the pre-restore — strictly after
    /// the event that planned it.
    pub at: SimTime,
    /// Keep-alive: the warmed worker expires (wasted) this long after
    /// `at` if no request arrives first.
    pub keepalive: SimDuration,
}

/// Runtime decision state of a predictive run: the forecaster fed from
/// the kernel's arrival events, the planner, and the outstanding-budget
/// gate. Constructed per run from a [`ProvisionPolicy`]; `new` returns
/// `None` for [`ProvisionPolicy::Disabled`] so the reactive path carries
/// no state at all.
pub struct Provisioner {
    kind: ForecasterKind,
    forecaster: Box<dyn Forecaster + Send>,
    mpc: MpcModel,
    horizon: SimDuration,
    budget: u32,
    outstanding: u32,
}

impl Provisioner {
    /// Decision state for `policy`; `None` when provisioning is disabled.
    pub fn new(policy: ProvisionPolicy) -> Option<Provisioner> {
        let ProvisionPolicy::Predictive {
            forecaster,
            horizon_us,
            budget,
        } = policy
        else {
            return None;
        };
        let horizon = SimDuration::from_micros(horizon_us.max(1));
        let memory =
            SimDuration::from_micros(horizon.as_micros().saturating_mul(ESTIMATOR_MEMORY_FACTOR));
        let estimator: Box<dyn Forecaster + Send> = match forecaster {
            ForecasterKind::SlidingWindow => Box::new(SlidingWindowRate::new(memory)),
            ForecasterKind::Ewma | ForecasterKind::Mpc => Box::new(EwmaRate::new(memory)),
        };
        Some(Provisioner {
            kind: forecaster,
            forecaster: estimator,
            mpc: MpcModel::default(),
            horizon,
            budget: budget.max(1),
            outstanding: 0,
        })
    }

    /// Feeds one arrival observation.
    pub fn observe(&mut self, now: SimTime) {
        self.forecaster.observe(now);
    }

    /// The keep-alive horizon: an unused pre-restored worker expires
    /// (wasted) this long after it was issued.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Plans a pre-restore for a worker slot that just went cold, or
    /// `None` to stay reactive. The simple arms pre-restore whenever the
    /// predicted inter-arrival gap fits the horizon and hold the worker
    /// for the full horizon; the MPC arm lets [`MpcModel::plan`] pick
    /// the expected-net-value-maximizing keep-alive (or decline when the
    /// image is too costly to hold warm). `image_bytes` is the caller's
    /// estimate of the image the worker would hold warm (0 when
    /// unknown).
    pub fn plan(&self, now: SimTime, image_bytes: u64) -> Option<PreRestorePlan> {
        if self.outstanding >= self.budget {
            return None;
        }
        let rate = self.forecaster.rate_per_us(now);
        let horizon_us = self.horizon.as_micros();
        let keepalive_us = match self.kind {
            ForecasterKind::SlidingWindow | ForecasterKind::Ewma => {
                (rate > 0.0 && 1.0 / rate <= horizon_us as f64).then_some(horizon_us)
            }
            ForecasterKind::Mpc => self.mpc.plan(rate, horizon_us, image_bytes),
        }?;
        Some(PreRestorePlan {
            // Strictly after `now`: the decision fires as its own kernel
            // event, never inside the event that planned it.
            at: now + SimDuration::from_micros(1),
            keepalive: SimDuration::from_micros(keepalive_us.max(1)),
        })
    }

    /// Notes an issued pre-restore (consumes budget).
    pub fn note_issued(&mut self) {
        self.outstanding += 1;
    }

    /// Notes a resolved pre-restore — used or wasted (frees budget).
    pub fn note_resolved(&mut self) {
        self.outstanding = self.outstanding.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn disabled_builds_no_state() {
        assert!(Provisioner::new(ProvisionPolicy::Disabled).is_none());
        assert!(!ProvisionPolicy::Disabled.enabled());
        assert_eq!(ProvisionPolicy::default(), ProvisionPolicy::Disabled);
        assert_eq!(ProvisionPolicy::Disabled.label(), "reactive");
    }

    #[test]
    fn kinds_round_trip_through_labels() {
        for kind in ForecasterKind::ALL {
            assert_eq!(ForecasterKind::parse(kind.label()), Some(kind));
            assert!(ProvisionPolicy::predictive(kind).enabled());
            assert_eq!(ProvisionPolicy::predictive(kind).label(), kind.label());
        }
        assert_eq!(ForecasterKind::parse("nope"), None);
    }

    #[test]
    fn plan_gates_on_forecast_and_budget() {
        let mut p = Provisioner::new(ProvisionPolicy::predictive(ForecasterKind::Ewma))
            .expect("predictive builds state");
        // No observations yet: no forecast, no plan.
        assert_eq!(p.plan(secs(0), 0), None);
        // A steady stream with 10 s gaps fits the 120 s horizon.
        for s in (0..600).step_by(10) {
            p.observe(secs(s));
        }
        let plan = p.plan(secs(600), 0).expect("dense traffic plans");
        assert!(plan.at > secs(600), "plans strictly in the future");
        // The simple arms hold the worker for the full horizon.
        assert_eq!(plan.keepalive, p.horizon());
        // Budget: one outstanding pre-restore blocks the next plan...
        p.note_issued();
        assert_eq!(p.plan(secs(600), 0), None);
        // ...until it resolves.
        p.note_resolved();
        assert!(p.plan(secs(600), 0).is_some());
    }

    #[test]
    fn sparse_traffic_stays_reactive() {
        let mut p = Provisioner::new(ProvisionPolicy::predictive(ForecasterKind::Ewma))
            .expect("predictive builds state");
        // One arrival per hour: the predicted gap dwarfs the horizon.
        for h in 0..12 {
            p.observe(secs(h * 3600));
        }
        assert_eq!(p.plan(secs(12 * 3600), 0), None);
    }

    #[test]
    fn mpc_arm_delegates_to_the_planner() {
        let mut p = Provisioner::new(ProvisionPolicy::predictive(ForecasterKind::Mpc))
            .expect("predictive builds state");
        for s in 0..600 {
            p.observe(secs(s));
        }
        // Dense traffic, small image: plan fires immediately with the
        // full-horizon keep-alive.
        let plan = p.plan(secs(600), 1 << 20).expect("mpc plans under load");
        assert_eq!(plan.at, secs(600) + SimDuration::from_micros(1));
        assert_eq!(plan.keepalive, p.horizon());
        // A 512 MB image flips the trade: too heavy to hold warm.
        assert_eq!(p.plan(secs(600), 512 << 30), None);
    }

    #[test]
    fn stats_hit_rate_handles_zero_issued() {
        let mut s = ProvisionStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        s.pre_restores_issued = 4;
        s.pre_restores_used = 3;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}

//! Arrival forecasting and predictive pre-restore provisioning.
//!
//! Every policy in `pronghorn-core` is *reactive*: it decides what to
//! checkpoint and what to restore only when a request has already
//! arrived. This crate adds the orthogonal *proactive* axis — SPES-style
//! arrival forecasting driving pre-restore actions that warm a worker
//! ahead of a predicted burst, so the burst's first requests land on a
//! process whose image is resident and whose IO state has been
//! re-established off the critical path.
//!
//! The subsystem is split the same way the reactive stack is:
//!
//! * [`Forecaster`] — per-function arrival-rate estimators fed only
//!   simulated timestamps ([`SlidingWindowRate`], [`EwmaRate`]). No wall
//!   clock, no entropy: the same observation sequence always produces the
//!   same forecast, so predictive runs stay seed-reproducible.
//! * [`MpcModel`] — a horizon-optimizing planner that turns a rate
//!   forecast into a pre-restore decision, trading the predicted
//!   cold-start latency saved against the keep-alive memory cost of
//!   holding a warm image idle (an MPC-style one-step lookahead over the
//!   horizon).
//! * [`ProvisionPolicy`] / [`Provisioner`] — the knob the platform
//!   carries on its run configuration ([`ProvisionPolicy::Disabled`] is
//!   the byte-identical reactive default) and the runtime decision state
//!   a run instantiates from it.
//!
//! The platform layer owns the actual pre-restore mechanics (scheduling
//! through the simulation kernel, hydrating the lazy image, accounting
//! [`ProvisionStats`]); this crate owns every *decision*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod forecaster;
mod mpc;
mod policy;

pub use forecaster::{EwmaRate, Forecaster, SlidingWindowRate};
pub use mpc::MpcModel;
pub use policy::{ForecasterKind, PreRestorePlan, ProvisionPolicy, ProvisionStats, Provisioner};

//! Per-function arrival-rate estimators.
//!
//! Both estimators are pure functions of the simulated observation
//! sequence: state advances only on [`Forecaster::observe`] and decays
//! only with the *queried* simulated time, never a wall clock. On a
//! constant-rate Poisson stream both converge to the true rate (pinned by
//! `tests/forecaster_props.rs`).

use pronghorn_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// An arrival-rate estimator driven purely by simulated timestamps.
pub trait Forecaster {
    /// Feeds one arrival observed at `now` (non-decreasing across calls).
    fn observe(&mut self, now: SimTime);

    /// The estimated arrival rate, in arrivals per microsecond, as seen
    /// from `now` (which may be later than the last observation — the
    /// estimate decays across observation gaps).
    fn rate_per_us(&self, now: SimTime) -> f64;

    /// Stable display name.
    fn label(&self) -> &'static str;
}

/// Count-over-window estimator: the rate is the number of arrivals in the
/// trailing `window`, divided by the window length. Exact over the window
/// and memoryless beyond it — it forgets a burst entirely once the window
/// slides past, which is precisely the failure mode the EWMA and MPC arms
/// of the provisioning ablation exist to contrast.
#[derive(Debug, Clone)]
pub struct SlidingWindowRate {
    window: SimDuration,
    arrivals: VecDeque<SimTime>,
}

impl SlidingWindowRate {
    /// An estimator over the trailing `window` (clamped to ≥ 1 µs).
    pub fn new(window: SimDuration) -> Self {
        SlidingWindowRate {
            window: SimDuration::from_micros(window.as_micros().max(1)),
            arrivals: VecDeque::new(),
        }
    }

    fn cutoff(&self, now: SimTime) -> SimTime {
        SimTime::from_micros(now.as_micros().saturating_sub(self.window.as_micros()))
    }
}

impl Forecaster for SlidingWindowRate {
    fn observe(&mut self, now: SimTime) {
        self.arrivals.push_back(now);
        let cutoff = self.cutoff(now);
        while self.arrivals.front().is_some_and(|&t| t < cutoff) {
            self.arrivals.pop_front();
        }
    }

    fn rate_per_us(&self, now: SimTime) -> f64 {
        // The deque is only trimmed on observe; a query later than the
        // last observation must discount what has since slid out.
        let cutoff = self.cutoff(now);
        let in_window = self
            .arrivals
            .iter()
            .filter(|&&t| t >= cutoff && t <= now)
            .count();
        in_window as f64 / self.window.as_micros() as f64
    }

    fn label(&self) -> &'static str {
        "sliding-window"
    }
}

/// Exponentially-decayed arrival counter: each observation adds one to a
/// counter that decays with time constant `tau`; the rate estimate is the
/// decayed counter divided by `tau`. At stationarity on a Poisson stream
/// of rate λ the counter's expectation is `λ·τ`, so the estimate
/// converges to λ — but unlike the sliding window it remembers a burst
/// for several `tau` after it ends, decaying smoothly instead of
/// cliff-dropping to zero.
#[derive(Debug, Clone)]
pub struct EwmaRate {
    tau_us: f64,
    weight: f64,
    last: Option<SimTime>,
}

impl EwmaRate {
    /// An estimator with decay time constant `tau` (clamped to ≥ 1 µs).
    pub fn new(tau: SimDuration) -> Self {
        EwmaRate {
            tau_us: tau.as_micros().max(1) as f64,
            weight: 0.0,
            last: None,
        }
    }

    fn decayed_weight(&self, now: SimTime) -> f64 {
        match self.last {
            Some(last) => {
                let gap = now.saturating_since(last).as_micros() as f64;
                self.weight * (-gap / self.tau_us).exp()
            }
            None => 0.0,
        }
    }
}

impl Forecaster for EwmaRate {
    fn observe(&mut self, now: SimTime) {
        self.weight = self.decayed_weight(now) + 1.0;
        self.last = Some(now);
    }

    fn rate_per_us(&self, now: SimTime) -> f64 {
        self.decayed_weight(now) / self.tau_us
    }

    fn label(&self) -> &'static str {
        "ewma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn sliding_window_counts_only_the_window() {
        let mut f = SlidingWindowRate::new(SimDuration::from_secs(10));
        for s in 0..20 {
            f.observe(secs(s));
        }
        // Arrivals at 10..=20 s are inside the window ending at 20 s.
        let rate = f.rate_per_us(secs(20));
        assert!((rate - 10.0 / 10e6).abs() < 1e-12, "rate {rate}");
        // Query far past the last observation: everything slid out.
        assert_eq!(f.rate_per_us(secs(100)), 0.0);
    }

    #[test]
    fn sliding_window_evicts_on_observe() {
        let mut f = SlidingWindowRate::new(SimDuration::from_secs(1));
        for s in 0..100 {
            f.observe(secs(s));
        }
        // Memory stays bounded by the window, not the history.
        assert!(f.arrivals.len() <= 2, "{} retained", f.arrivals.len());
    }

    #[test]
    fn ewma_converges_on_a_regular_stream() {
        let mut f = EwmaRate::new(SimDuration::from_secs(30));
        // One arrival per second for ten time constants.
        for s in 0..300 {
            f.observe(secs(s));
        }
        let rate = f.rate_per_us(secs(300));
        let truth = 1.0 / 1e6;
        assert!(
            (rate - truth).abs() < truth * 0.1,
            "rate {rate} vs true {truth}"
        );
    }

    #[test]
    fn ewma_decays_across_gaps_but_remembers_longer_than_the_window() {
        let tau = SimDuration::from_secs(30);
        let mut ewma = EwmaRate::new(tau);
        let mut win = SlidingWindowRate::new(tau);
        for s in 0..60 {
            ewma.observe(secs(s));
            win.observe(secs(s));
        }
        // 90 s of silence: the window has fully forgotten, the EWMA has
        // decayed by e^{-3} but still predicts a positive rate.
        let later = secs(150);
        assert_eq!(win.rate_per_us(later), 0.0);
        let remembered = ewma.rate_per_us(later);
        assert!(remembered > 0.0);
        assert!(remembered < ewma.rate_per_us(secs(60)));
    }

    #[test]
    fn fresh_estimators_predict_zero() {
        let win = SlidingWindowRate::new(SimDuration::from_secs(10));
        let ewma = EwmaRate::new(SimDuration::from_secs(10));
        assert_eq!(win.rate_per_us(secs(5)), 0.0);
        assert_eq!(ewma.rate_per_us(secs(5)), 0.0);
        assert_eq!(win.label(), "sliding-window");
        assert_eq!(ewma.label(), "ewma");
    }
}

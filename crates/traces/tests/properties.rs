//! Property-based tests for the synthetic trace generator.

#![forbid(unsafe_code)]

use pronghorn_sim::{RngFactory, SimDuration, SimTime};
use pronghorn_traces::{PopularityModel, Trace, TraceSpec};
use proptest::prelude::*;

proptest! {
    /// Generated arrivals are sorted and inside the window for any
    /// percentile and seed.
    #[test]
    fn arrivals_are_sorted_and_bounded(percentile in 0.0f64..1.0, seed in any::<u64>()) {
        let factory = RngFactory::new(seed);
        let trace = TraceSpec::percentile(percentile).generate(&mut factory.stream("t"));
        let end = SimTime::ZERO + trace.window();
        for pair in trace.arrivals().windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        prop_assert!(trace.arrivals().iter().all(|&t| t <= end));
    }

    /// The popularity model is monotone non-decreasing in the percentile.
    #[test]
    fn popularity_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let m = PopularityModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.window_invocations(lo) <= m.window_invocations(hi) + 1e-12);
        prop_assert!(m.window_invocations(lo) > 0.0);
    }

    /// `Trace::new` sanitizes arbitrary input: sorts and clips to window.
    #[test]
    fn trace_construction_sanitizes(
        raw in prop::collection::vec(0u64..2_000_000_000, 0..64),
        window_s in 1u64..3_600,
    ) {
        let window = SimDuration::from_secs(window_s);
        let arrivals: Vec<SimTime> = raw.iter().map(|&us| SimTime::from_micros(us)).collect();
        let trace = Trace::new(arrivals.clone(), window);
        let end = SimTime::ZERO + window;
        prop_assert!(trace.arrivals().iter().all(|&t| t <= end));
        for pair in trace.arrivals().windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        let expected = arrivals.iter().filter(|&&t| t <= end).count();
        prop_assert_eq!(trace.len(), expected);
    }

    /// Same seed, same trace — across any percentile.
    #[test]
    fn generation_is_deterministic(percentile in 0.0f64..1.0, seed in any::<u64>()) {
        let gen_once = || {
            let factory = RngFactory::new(seed);
            TraceSpec::percentile(percentile).generate(&mut factory.stream("x"))
        };
        prop_assert_eq!(gen_once(), gen_once());
    }
}

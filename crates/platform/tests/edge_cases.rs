//! Edge-case integration tests for the platform runners.

#![forbid(unsafe_code)]

use pronghorn_core::{PolicyKind, SelectionStrategy};
use pronghorn_platform::{
    run_closed_loop, run_fleet, run_partitioned, run_trace, FleetConfig, RunConfig,
};
use pronghorn_sim::{SimDuration, SimTime};
use pronghorn_traces::Trace;
use pronghorn_workloads::{by_name, InputVariance};

fn cfg(policy: PolicyKind) -> RunConfig {
    RunConfig::paper(policy, 4, 1).with_variance(InputVariance::none())
}

#[test]
fn empty_trace_produces_empty_result() {
    let bench = by_name("MST").unwrap();
    let trace = Trace::new(Vec::new(), SimDuration::from_secs(900));
    let result = run_trace(&bench, &cfg(PolicyKind::RequestCentric), &trace);
    assert!(result.latencies_us.is_empty());
    assert!(result.provisions.is_empty());
    assert!(result.median_us().is_nan());
}

#[test]
fn single_invocation_run_works_for_all_policies() {
    let bench = by_name("Hash").unwrap();
    for policy in [
        PolicyKind::Cold,
        PolicyKind::AfterFirst,
        PolicyKind::AfterInit,
        PolicyKind::RequestCentric,
    ] {
        let result = run_closed_loop(&bench, &cfg(policy).with_invocations(1));
        assert_eq!(result.latencies_us.len(), 1, "{policy:?}");
        assert_eq!(result.provisions.len(), 1);
    }
}

#[test]
fn after_init_policy_snapshots_before_first_request() {
    let bench = by_name("DFS").unwrap();
    let result = run_closed_loop(&bench, &cfg(PolicyKind::AfterInit).with_invocations(40));
    assert_eq!(result.checkpoint_ms.len(), 1);
    assert_eq!(result.snapshot_requests, vec![0]);
    // Restored workers resume at 0 and therefore pay lazy init on their
    // first request — the §5.1 inferiority.
    let first = run_closed_loop(&bench, &cfg(PolicyKind::AfterFirst).with_invocations(40));
    assert!(result.median_us() >= first.median_us());
}

#[test]
fn zero_invocations_is_a_noop() {
    let bench = by_name("BFS").unwrap();
    let result = run_closed_loop(&bench, &cfg(PolicyKind::RequestCentric).with_invocations(0));
    assert!(result.latencies_us.is_empty());
    assert_eq!(result.checkpoint_ms.len(), 0);
}

#[test]
fn all_selection_strategies_complete_runs() {
    let bench = by_name("DFS").unwrap();
    for strategy in [
        SelectionStrategy::Softmax,
        SelectionStrategy::Greedy,
        SelectionStrategy::Uniform,
    ] {
        let policy_config = pronghorn_core::PolicyConfig::paper_pypy().with_selection(strategy);
        let run_cfg = cfg(PolicyKind::RequestCentric)
            .with_invocations(80)
            .with_policy_config(policy_config);
        let result = run_closed_loop(&bench, &run_cfg);
        assert_eq!(result.latencies_us.len(), 80, "{strategy:?}");
        assert!(result.restores() > 0, "{strategy:?} never restored");
    }
}

#[test]
fn beta_misestimation_still_serves_all_requests() {
    let bench = by_name("DFS").unwrap();
    // Overestimate: workers actually die after 1 request but the policy
    // plans for 20 — checkpoints planned beyond the true lifetime are
    // simply never reached.
    let over = RunConfig::paper(PolicyKind::RequestCentric, 1, 2)
        .with_invocations(150)
        .with_beta_estimate(20);
    let result = run_closed_loop(&bench, &over);
    assert_eq!(result.latencies_us.len(), 150);
    // Fewer checkpoints than lifetimes (some plans land past request 1).
    assert!(result.checkpoint_ms.len() < 150);
}

#[test]
fn fleet_of_one_with_zero_explorers_is_all_cold() {
    let bench = by_name("Hash").unwrap();
    let result = run_fleet(
        &bench,
        &cfg(PolicyKind::RequestCentric).with_invocations(60),
        &FleetConfig {
            fleet_size: 1,
            explorers: 0,
        },
    );
    assert_eq!(result.cold_starts(), result.provisions.len());
}

#[test]
fn partitioned_with_many_classes_still_serves_everything() {
    let bench = by_name("DFS").unwrap();
    let run_cfg = cfg(PolicyKind::RequestCentric)
        .with_invocations(90)
        .with_variance(InputVariance::paper());
    let result = run_partitioned(&bench, &run_cfg, 5);
    assert_eq!(result.latencies_us.len(), 90);
    assert!(result
        .latencies_us
        .iter()
        .all(|&l| l.is_finite() && l > 0.0));
}

#[test]
fn trace_with_all_arrivals_at_once_reuses_one_worker() {
    let bench = by_name("MST").unwrap();
    let arrivals = vec![SimTime::from_micros(1); 10];
    let trace = Trace::new(arrivals, SimDuration::from_secs(900));
    let result = run_trace(&bench, &cfg(PolicyKind::Cold), &trace);
    assert_eq!(result.latencies_us.len(), 10);
    // No idle gaps: a single worker serves the burst.
    assert_eq!(result.provisions.len(), 1);
}

#[test]
fn checkpoint_stop_zero_disables_checkpointing_entirely() {
    let bench = by_name("DFS").unwrap();
    let run_cfg = cfg(PolicyKind::RequestCentric)
        .with_invocations(80)
        .with_checkpoint_stop(0);
    let result = run_closed_loop(&bench, &run_cfg);
    assert!(result.checkpoint_ms.is_empty());
    assert_eq!(result.cold_starts(), result.provisions.len());
}

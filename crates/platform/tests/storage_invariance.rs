//! Storage-tier invariance: with the tier *off* (the default) nothing
//! changes, and with it *on* the eager path stays latency-locked while
//! the accounting laws the ablations ride on keep holding.

#![forbid(unsafe_code)]

use pronghorn_checkpoint::DeltaPolicy;
use pronghorn_cluster::{ClusterSpec, RoutingPolicy};
use pronghorn_core::PolicyKind;
use pronghorn_platform::{
    run_closed_loop, run_cluster, run_production, KernelKind, RestoreStrategy, RunConfig,
    StoragePolicy, StorageStats,
};
use pronghorn_sim::{RngFactory, SimDuration};
use pronghorn_traces::TraceSpec;
use pronghorn_workloads::by_name;

fn cfg(policy: PolicyKind, rate: u32) -> RunConfig {
    RunConfig::paper(policy, rate, 0xD15C).with_invocations(150)
}

#[test]
fn disabled_storage_policy_is_byte_identical_to_the_default() {
    // `with_storage(disabled())` must construct no tier: the run is the
    // same run, not an approximation of it.
    let bench = by_name("DFS").unwrap();
    let base = run_closed_loop(&bench, &cfg(PolicyKind::RequestCentric, 1));
    let gated = run_closed_loop(
        &bench,
        &cfg(PolicyKind::RequestCentric, 1).with_storage(StoragePolicy::disabled()),
    );
    assert_eq!(base.latencies_us, gated.latencies_us);
    assert_eq!(base.restore_bytes(), gated.restore_bytes());
    assert_eq!(
        base.overheads.nominal_bytes_downloaded,
        gated.overheads.nominal_bytes_downloaded
    );
    assert_eq!(base.storage, StorageStats::default());
    assert_eq!(gated.storage, StorageStats::default());
}

#[test]
fn eager_cache_and_compression_never_touch_the_critical_path() {
    // On the eager restore path the tier only reprices off-critical-path
    // transfer accounting: client latencies and nominal byte counters
    // must stay byte-identical to the flat run, under both kernels.
    let bench = by_name("Hash").unwrap();
    for kernel in [KernelKind::BinaryHeap, KernelKind::TimerWheel] {
        let flat = run_closed_loop(
            &bench,
            &cfg(PolicyKind::RequestCentric, 1)
                .with_delta(DeltaPolicy::Enabled { max_depth: 16 })
                .with_kernel(kernel),
        );
        let tiered = run_closed_loop(
            &bench,
            &cfg(PolicyKind::RequestCentric, 1)
                .with_delta(DeltaPolicy::Enabled { max_depth: 16 })
                .with_kernel(kernel)
                .with_storage(StoragePolicy::disabled().with_cache().with_compression()),
        );
        assert_eq!(flat.latencies_us, tiered.latencies_us, "{kernel:?}");
        assert_eq!(
            flat.overheads.nominal_bytes_downloaded,
            tiered.overheads.nominal_bytes_downloaded
        );
        assert_eq!(
            flat.overheads.nominal_bytes_uploaded,
            tiered.overheads.nominal_bytes_uploaded
        );
        assert_eq!(flat.restore_bytes(), tiered.restore_bytes());
        // ... while the tier itself was demonstrably exercised.
        assert!(tiered.storage.cache_hits > 0, "{kernel:?}: no SSD hits");
        assert!(
            tiered.storage.wire_bytes_uploaded > 0
                && tiered.storage.wire_bytes_uploaded < tiered.overheads.nominal_bytes_uploaded,
            "{kernel:?}: compression never shrank an upload"
        );
        assert!(tiered.storage.compress_us > 0.0);
    }
}

#[test]
fn composed_prefetch_is_kernel_invariant() {
    let bench = by_name("DFS").unwrap();
    let storage = StoragePolicy::disabled()
        .with_cache()
        .with_compression()
        .with_composed_prefetch();
    let run = |kernel| {
        run_closed_loop(
            &bench,
            &cfg(PolicyKind::RequestCentric, 1)
                .with_delta(DeltaPolicy::Enabled { max_depth: 16 })
                .with_restore(RestoreStrategy::RecordPrefetch)
                .with_storage(storage)
                .with_kernel(kernel),
        )
    };
    let heap = run(KernelKind::BinaryHeap);
    let wheel = run(KernelKind::TimerWheel);
    assert_eq!(heap.latencies_us, wheel.latencies_us);
    assert_eq!(heap.restore_bytes(), wheel.restore_bytes());
    assert_eq!(heap.storage, wheel.storage);
    assert!(heap.storage.composed_prefetches > 0, "prefetch never fired");
}

#[test]
fn cluster_conservation_law_survives_cache_and_compression() {
    // Every restored byte is either a store download or a cross-node
    // transfer. Compression moves wire bytes and transfer time, never
    // nominal accounting — so the law must hold verbatim with the full
    // tier enabled on a contended multi-node cluster.
    let bench = by_name("Hash").unwrap();
    let spec = ClusterSpec::new(4)
        .with_capacity(1)
        .with_routing(RoutingPolicy::LoadAware);
    let mut c = cfg(PolicyKind::RequestCentric, 1)
        .with_delta(DeltaPolicy::Enabled { max_depth: 16 })
        .with_storage(StoragePolicy::disabled().with_cache().with_compression())
        .with_cluster(spec);
    c.request_gap = SimDuration::from_millis(1);
    let r = run_cluster(&bench, &c);
    assert!(r.locality.remote_misses > 0, "{:?}", r.locality);
    assert_eq!(
        r.result.restore_bytes(),
        r.result.overheads.nominal_bytes_downloaded + r.locality.remote_bytes
    );
    assert!(r.result.storage.cache_hits > 0);
}

#[test]
fn production_runs_carry_storage_stats() {
    let bench = by_name("Hash").unwrap();
    let c = cfg(PolicyKind::RequestCentric, 1)
        .with_delta(DeltaPolicy::Enabled { max_depth: 16 })
        .with_storage(StoragePolicy::disabled().with_cache().with_compression());
    let factory = RngFactory::new(17);
    let trace = TraceSpec::percentile(0.5).generate(&mut factory.stream("t"));
    let stats = run_production(&bench, &c, trace.arrivals().iter().copied());
    assert!(stats.checkpoints > 0);
    assert!(
        stats.storage.wire_bytes_uploaded > 0,
        "production runs must surface tier counters: {:?}",
        stats.storage
    );
}

//! Integration tests asserting the *shapes* of the paper's headline
//! results: who wins, by roughly what factor, and where the effect
//! shrinks. These run the full §5.1 protocol (500 invocations, paper
//! input variance).

#![forbid(unsafe_code)]

use pronghorn_core::PolicyKind;
use pronghorn_metrics::median_improvement_pct;
use pronghorn_platform::{run_closed_loop, RunConfig};
use pronghorn_workloads::by_name;

fn median(bench: &str, policy: PolicyKind, rate: u32) -> f64 {
    let workload = by_name(bench).expect("benchmark exists");
    let cfg = RunConfig::paper(policy, rate, 0xA11CE);
    run_closed_loop(&workload, &cfg).median_us()
}

fn improvement(bench: &str, rate: u32) -> f64 {
    let base = median(bench, PolicyKind::AfterFirst, rate);
    let rc = median(bench, PolicyKind::RequestCentric, rate);
    median_improvement_pct(base, rc).expect("finite medians")
}

#[test]
fn compute_benchmarks_improve_significantly_at_rate_one() {
    // §5.2: six compute benchmarks improve 20.5–58.9% at eviction rate 1.
    for bench in ["BFS", "DFS", "MST", "DynamicHTML", "PageRank"] {
        let imp = improvement(bench, 1);
        assert!(
            imp > 10.0,
            "{bench}: request-centric improvement {imp:.1}% too small"
        );
        assert!(
            imp < 80.0,
            "{bench}: improvement {imp:.1}% implausibly large"
        );
    }
}

#[test]
fn java_benchmarks_improve_at_rate_one() {
    for bench in ["HTMLRendering", "WordCount"] {
        let imp = improvement(bench, 1);
        assert!(imp > 10.0, "{bench}: improvement {imp:.1}%");
    }
}

#[test]
fn io_bound_benchmarks_are_on_par() {
    // §5.2: Compression/Thumbnailer/Video within ~5% of state of the art.
    for bench in ["Compression", "Video", "Thumbnailer"] {
        let imp = improvement(bench, 1);
        assert!(
            imp.abs() < 10.0,
            "{bench}: |{imp:.1}%| should be near parity"
        );
    }
}

#[test]
fn uploader_regresses() {
    let imp = improvement("Uploader", 1);
    assert!(imp < 0.0, "Uploader should regress, got {imp:.1}%");
    assert!(
        imp > -25.0,
        "Uploader regression {imp:.1}% implausibly large"
    );
}

#[test]
fn improvement_shrinks_with_slower_eviction() {
    // §5.2: geometric-mean improvement 37.2% (rate 1) → 22.5% (4) → 13.5%
    // (20). Check the monotone trend on one benchmark.
    let i1 = improvement("BFS", 1);
    let i20 = improvement("BFS", 20);
    assert!(
        i1 > i20,
        "rate-1 improvement {i1:.1}% should exceed rate-20 {i20:.1}%"
    );
}

#[test]
fn cold_start_is_the_worst_policy_for_compute_benchmarks() {
    for bench in ["BFS", "HTMLRendering"] {
        let cold = median(bench, PolicyKind::Cold, 1);
        let after = median(bench, PolicyKind::AfterFirst, 1);
        let rc = median(bench, PolicyKind::RequestCentric, 1);
        assert!(cold > after, "{bench}: cold {cold} <= after-1st {after}");
        assert!(
            after > rc,
            "{bench}: after-1st {after} <= request-centric {rc}"
        );
    }
}

#[test]
fn after_init_is_worse_than_after_first() {
    // §5.1's observation that snapshotting before the first invocation is
    // inferior (lazy initialization happens on the first request).
    let init = median("HTMLRendering", PolicyKind::AfterInit, 1);
    let first = median("HTMLRendering", PolicyKind::AfterFirst, 1);
    assert!(
        init > first,
        "after-init {init} should be slower than after-1st {first}"
    );
}

//! The N-node cluster runner: a sharded gateway over per-node worker
//! pools, driven through one simulation kernel.
//!
//! [`run_cluster`] generalizes [`crate::run_closed_loop`] to a cluster of
//! `ClusterSpec::nodes` nodes behind a deterministic consistent-hash
//! gateway:
//!
//! - **Routing.** A function's invocations land on its ring owner
//!   ([`HashRing::route`]); under [`RoutingPolicy::LoadAware`] an arrival
//!   that finds the owner saturated probes the ring successors in
//!   deterministic ring order and serves on the first node with a free
//!   worker slot (falling back to the owner's queue when the whole
//!   cluster is busy).
//! - **Capacity and queueing.** Each node has `capacity` worker slots. A
//!   request arriving while its slot is still serving the previous one
//!   waits; that queueing delay is added to the client-visible latency
//!   (the policy still observes the execution latency — queueing is a
//!   placement artifact, not a property of the worker).
//! - **Locality.** Snapshot blobs live in the shared content-addressed
//!   object store, but *residency* is per node ([`BlobDirectory`]): a
//!   restore on the node that checkpointed (or previously fetched) the
//!   blob is a local hit at the single-node price; anywhere else it pays
//!   the Table 5 chained-transfer price for the composed chain, and the
//!   cross-node snapshot age feeds the staleness model
//!   ([`crate::IoStaleModel::penalty_frac_aged`]).
//!
//! The whole cluster shares one [`Session`] — one orchestrator, snapshot
//! pool and set of seeded RNG streams — so the `nodes = 1` run replays
//! the exact event sequence of [`crate::run_closed_loop`] and is pinned
//! byte-identical to it (see the goldens in `tests/`), and N-node runs
//! are byte-identical under either [`pronghorn_sim::KernelKind`].

use crate::config::RunConfig;
use crate::result::RunResult;
use crate::runner::{Session, PRE_RESTORE_EVENT, PRE_WARM_EXPIRY_EVENT};
use crate::worker::Worker;
use pronghorn_cluster::{
    BlobDirectory, ClusterSpec, HashRing, LocalityStats, PlacementPolicy, RoutingPolicy,
};
use pronghorn_sim::{Kernel, SimDuration, SimTime};
use pronghorn_store::saturating_accumulate;
use pronghorn_workloads::Workload;
use std::collections::VecDeque;

/// Per-node counters of one cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeBreakdown {
    /// Node index on the ring.
    pub node: u32,
    /// Requests served on this node.
    pub served: u64,
    /// Requests served here although another node was the ring owner.
    pub spillovers: u64,
    /// Workers cold-booted on this node.
    pub cold_starts: u64,
    /// Workers restored from a snapshot on this node.
    pub restores: u64,
    /// Restores served from a node-resident blob.
    pub local_hits: u64,
    /// Restores that fetched their blob from a peer node.
    pub remote_misses: u64,
    /// Total queueing delay added to client latencies on this node (µs).
    pub queue_delay_us: f64,
    /// Largest number of concurrently live workers (≤ the spec capacity).
    pub peak_workers: u32,
}

/// Result of a [`run_cluster`] run: the familiar [`RunResult`] plus the
/// cluster-only dimensions (per-node breakdowns and locality counters).
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// The single-function measurements, same shape as the single-node
    /// runners (latencies include queueing delay).
    pub result: RunResult,
    /// The cluster shape the run used.
    pub spec: ClusterSpec,
    /// Per-node counters, indexed by node.
    pub nodes: Vec<NodeBreakdown>,
    /// Cluster-wide locality counters.
    pub locality: LocalityStats,
}

impl ClusterRunResult {
    /// Fraction of restores served from a node-resident blob.
    pub fn locality_hit_rate(&self) -> f64 {
        self.locality.hit_rate()
    }

    /// Total queueing delay across all nodes (µs).
    pub fn total_queue_delay_us(&self) -> f64 {
        self.nodes.iter().map(|n| n.queue_delay_us).sum()
    }

    /// Total requests served off their ring-owner node.
    pub fn spillovers(&self) -> u64 {
        self.nodes.iter().map(|n| n.spillovers).sum()
    }

    /// Total requests served (conservation: equals the configured
    /// invocation count).
    pub fn served(&self) -> u64 {
        self.nodes.iter().map(|n| n.served).sum()
    }
}

/// One node's worker pool: `capacity` slots, each remembering when its
/// current (or last) request finishes on the virtual clock.
struct NodeState {
    slots: Vec<Option<Worker>>,
    busy_until: Vec<SimTime>,
    stats: NodeBreakdown,
}

impl NodeState {
    fn new(node: u32, capacity: u32) -> Self {
        NodeState {
            slots: (0..capacity).map(|_| None).collect(),
            busy_until: vec![SimTime::ZERO; capacity as usize],
            stats: NodeBreakdown {
                node,
                ..NodeBreakdown::default()
            },
        }
    }

    /// Whether some slot can start serving at `now` without queueing.
    fn has_free_slot(&self, now: SimTime) -> bool {
        self.busy_until.iter().any(|&b| b <= now)
    }

    /// The slot an arrival at `now` is dispatched to: the first free slot
    /// (lowest index — warm workers accumulate at low indices, so this
    /// prefers reuse over a fresh boot), else the slot that frees up
    /// earliest (ties to the lowest index), where the request queues.
    fn pick_slot(&self, now: SimTime) -> usize {
        if let Some(free) = self.busy_until.iter().position(|&b| b <= now) {
            return free;
        }
        let mut best = 0;
        for (i, &b) in self.busy_until.iter().enumerate() {
            if b < self.busy_until[best] {
                best = i;
            }
        }
        best
    }

    fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// Syncs freshly recorded / evicted pool blobs into the residency
/// directory, attributing new blobs to the node that checkpointed them.
fn drain_pool_events(
    session: &mut Session<'_>,
    dir: &mut BlobDirectory,
    node: u32,
    spec: &ClusterSpec,
    now: SimTime,
) {
    let (recorded, evicted) = session.orch.drain_pool_events();
    for (id, bytes) in recorded {
        dir.record(id.0, node, now);
        if spec.placement == PlacementPolicy::Replicate {
            dir.replicate(id.0, bytes);
        }
    }
    for id in evicted {
        dir.evict(id.0);
    }
}

/// Provisions a worker on `node`, charging the remote transfer (and
/// recording the cross-node snapshot age) when the restored blob was not
/// resident there.
fn provision_on(
    session: &mut Session<'_>,
    dir: &mut BlobDirectory,
    node: &mut NodeState,
    spec: &ClusterSpec,
    now: SimTime,
) -> Worker {
    let (mut worker, origin) = session.provision_traced(now);
    // An immediately-due plan checkpoints inside provisioning; those
    // blobs become resident here.
    drain_pool_events(session, dir, node.stats.node, spec, now);
    match origin {
        Some(o) => {
            node.stats.restores += 1;
            // Price the would-be miss up front (pure in the inputs, so
            // computing it eagerly is value-identical): the session's
            // storage tier collapses a composed chain into one batched
            // wire-byte fetch; without a tier this is the legacy serial
            // chain walk. `bytes` stays nominal either way, preserving
            // the conservation law under compression.
            let transfer = session.remote_fetch_price(&o, &spec.remote);
            let access = dir.access_priced(o.id.0, node.stats.node, o.nominal, now, transfer);
            if access.hit {
                node.stats.local_hits += 1;
            } else {
                node.stats.remote_misses += 1;
                // The fetch rides the provisioning path (off the request
                // critical path, like the store download it extends).
                session.provision_us += access.transfer.as_micros() as f64;
                if let Some(info) = worker.restore.as_mut() {
                    saturating_accumulate(
                        "bytes_transferred",
                        &mut info.bytes_transferred,
                        access.bytes,
                    );
                }
                worker.stale_age = access.age;
                session.note_remote_fetched(&o);
            }
        }
        None => node.stats.cold_starts += 1,
    }
    worker
}

/// Runs the closed-loop protocol on an N-node cluster behind a
/// consistent-hash gateway (see the module docs for the model).
///
/// With `cfg.cluster == ClusterSpec::single_node()` this replays the
/// exact event sequence of [`crate::run_closed_loop`].
///
/// # Examples
///
/// ```
/// use pronghorn_core::PolicyKind;
/// use pronghorn_platform::{run_cluster, ClusterSpec, RunConfig};
/// use pronghorn_workloads::by_name;
///
/// let workload = by_name("Hash").unwrap();
/// let cfg = RunConfig::paper(PolicyKind::RequestCentric, 4, 7)
///     .with_invocations(40)
///     .with_cluster(ClusterSpec::new(4).with_capacity(2));
/// let r = run_cluster(&workload, &cfg);
/// assert_eq!(r.served(), 40);
/// assert!(r.locality_hit_rate() >= 0.0);
/// ```
pub fn run_cluster(workload: &dyn Workload, cfg: &RunConfig) -> ClusterRunResult {
    let spec = cfg.cluster;
    let mut session = Session::new(workload, *cfg, cfg.invocations as usize);
    let ring = HashRing::new(spec.nodes);
    // One function per run, so the probe order is fixed: the ring owner
    // first, then the deterministic spillover successors.
    let probe = ring.successors(HashRing::key_of(workload.name()));
    let primary = probe[0];
    let mut dir = BlobDirectory::new(spec.nodes);
    let mut nodes: Vec<NodeState> = (0..spec.nodes)
        .map(|n| NodeState::new(n, spec.capacity))
        .collect();

    // The same closed-loop arrival pump as `run_closed_loop`: arrival `i`
    // fires at `(i + 1) * request_gap`, self-scheduled through the
    // configured kernel, so results are byte-identical on either kernel.
    let total = u64::from(cfg.invocations);
    let mut kernel: Kernel<u64> = Kernel::new(cfg.kernel);
    if total > 0 {
        kernel.schedule(SimTime::ZERO + cfg.request_gap, 0);
    }
    // Destinations of planned-but-not-yet-fired pre-restores, in plan
    // order — every PRE_RESTORE_EVENT fires at plan-time + 1 µs, so the
    // kernel pops them in exactly this order.
    let mut pending_pre: VecDeque<(u32, usize)> = VecDeque::new();
    let mut last_now = SimTime::ZERO;
    while let Some((now, i)) = kernel.pop() {
        last_now = now;
        match i {
            PRE_RESTORE_EVENT => {
                let Some((target, slot)) = pending_pre.pop_front() else {
                    continue;
                };
                let node = &mut nodes[target as usize];
                if node.slots[slot].is_none() {
                    let mut w = provision_on(&mut session, &mut dir, node, &spec, now);
                    session.mark_pre_restored(&mut w, now);
                    kernel.schedule(w.pre_warm_expires, PRE_WARM_EXPIRY_EVENT);
                    node.slots[slot] = Some(w);
                } else {
                    session.cancel_pre_restore();
                }
                continue;
            }
            PRE_WARM_EXPIRY_EVENT => {
                // Keep-alives can differ per plan (the MPC arm picks its
                // own), so expiries are matched by scanning the slots in
                // deterministic (node, slot) order rather than FIFO.
                for node in nodes.iter_mut() {
                    for s in 0..node.slots.len() {
                        let expired = node.slots[s].as_ref().is_some_and(|w| {
                            w.pre_warmed_since.is_some() && now >= w.pre_warm_expires
                        });
                        if !expired {
                            continue;
                        }
                        if let Some(w) = node.slots[s].take() {
                            session.retire(w, now);
                        }
                        if let Some(at) = session.plan_pre_restore(now) {
                            pending_pre.push_back((node.stats.node, s));
                            kernel.schedule(at, PRE_RESTORE_EVENT);
                        }
                    }
                }
                continue;
            }
            _ => {}
        }
        let target = match spec.routing {
            RoutingPolicy::Hash => primary,
            RoutingPolicy::LoadAware => probe
                .iter()
                .copied()
                .find(|&n| nodes[n as usize].has_free_slot(now))
                .unwrap_or(primary),
        };
        let node = &mut nodes[target as usize];
        let slot = node.pick_slot(now);
        let mut w = match node.slots[slot].take() {
            Some(w) => w,
            None => provision_on(&mut session, &mut dir, node, &spec, now),
        };
        node.stats.peak_workers = node.stats.peak_workers.max(node.occupied() as u32 + 1);
        // Queueing: if the slot is still serving, this request waits for
        // it; the wait is client-visible but invisible to the policy,
        // whose streams see exactly the single-node sequence.
        let wait = node.busy_until[slot].saturating_since(now);
        let latency = session.serve(&mut w, i, now);
        drain_pool_events(&mut session, &mut dir, target, &spec, now);
        let wait_us = wait.as_micros() as f64;
        if wait_us > 0.0 {
            if let Some(last) = session.latencies.last_mut() {
                *last += wait_us;
            }
            node.stats.queue_delay_us += wait_us;
        }
        let start = now.max(node.busy_until[slot]);
        node.busy_until[slot] = start + SimDuration::from_micros_f64(latency);
        node.stats.served += 1;
        if target != primary {
            node.stats.spillovers += 1;
        }
        if w.served < cfg.eviction_rate {
            node.slots[slot] = Some(w);
        } else {
            session.retire(w, now);
            if let Some(at) = session.plan_pre_restore(now) {
                pending_pre.push_back((target, slot));
                kernel.schedule(at, PRE_RESTORE_EVENT);
            }
        }
        if i + 1 < total {
            kernel.schedule(now + cfg.request_gap, i + 1);
        }
    }

    for node in &mut nodes {
        for slot in &mut node.slots {
            if let Some(w) = slot.take() {
                session.retire(w, last_now);
            }
        }
    }
    let locality = *dir.stats();
    // Conservation: teardown releases every residency reference.
    dir.teardown();
    debug_assert_eq!(dir.total_refs(), 0, "residency refs must drain");
    ClusterRunResult {
        result: session.finish(),
        spec,
        nodes: nodes.into_iter().map(|n| n.stats).collect(),
        locality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_closed_loop;
    use pronghorn_core::PolicyKind;
    use pronghorn_sim::KernelKind;
    use pronghorn_workloads::{by_name, InputVariance};

    fn cfg(policy: PolicyKind, rate: u32) -> RunConfig {
        RunConfig::paper(policy, rate, 42)
            .with_invocations(120)
            .with_variance(InputVariance::none())
    }

    /// Full simulated-behaviour equality between two runs — every field
    /// except `codec`, whose wall-clock counters are not deterministic.
    fn assert_same_run(a: &RunResult, b: &RunResult) {
        assert_eq!(a.latencies_us, b.latencies_us);
        assert_eq!(a.provisions, b.provisions);
        assert_eq!(a.checkpoint_ms, b.checkpoint_ms);
        assert_eq!(a.restore_ms, b.restore_ms);
        assert_eq!(a.snapshot_mb, b.snapshot_mb);
        assert_eq!(a.snapshot_requests, b.snapshot_requests);
        assert_eq!(a.provision_us, b.provision_us);
        assert_eq!(a.overheads, b.overheads);
        assert_eq!(a.store_stats, b.store_stats);
        assert_eq!(a.restore_infos, b.restore_infos);
        assert_eq!(a.chain, b.chain);
    }

    fn assert_same_cluster_run(a: &ClusterRunResult, b: &ClusterRunResult) {
        assert_same_run(&a.result, &b.result);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.locality, b.locality);
    }

    /// A request gap far below the benchmarks' service times, so the ring
    /// owner saturates and load-aware routing has something to do.
    fn contended(policy: PolicyKind, rate: u32) -> RunConfig {
        let mut c = cfg(policy, rate);
        c.request_gap = SimDuration::from_millis(1);
        c
    }

    #[test]
    fn single_node_cluster_is_byte_identical_to_the_closed_loop() {
        for bench in ["DFS", "Hash", "Uploader"] {
            let bench = by_name(bench).unwrap();
            let c = cfg(PolicyKind::RequestCentric, 4);
            assert_eq!(c.cluster, ClusterSpec::single_node());
            let single = run_closed_loop(&bench, &c);
            let cluster = run_cluster(&bench, &c);
            assert_same_run(&single, &cluster.result);
            assert_eq!(cluster.locality.remote_misses, 0);
            assert_eq!(cluster.locality.remote_bytes, 0);
            assert_eq!(cluster.locality_hit_rate(), 1.0);
            assert_eq!(cluster.spillovers(), 0);
            assert_eq!(cluster.total_queue_delay_us(), 0.0);
        }
    }

    #[test]
    fn multi_node_runs_are_byte_identical_across_kernels() {
        let bench = by_name("Hash").unwrap();
        let base = contended(PolicyKind::RequestCentric, 4).with_cluster(
            ClusterSpec::new(4)
                .with_capacity(2)
                .with_routing(RoutingPolicy::LoadAware),
        );
        let heap = run_cluster(&bench, &base);
        let wheel = run_cluster(&bench, &base.with_kernel(KernelKind::TimerWheel));
        assert_same_cluster_run(&heap, &wheel);
    }

    #[test]
    fn cluster_runs_are_reproducible_by_seed() {
        let bench = by_name("MatrixMult").unwrap();
        let c = contended(PolicyKind::RequestCentric, 1).with_cluster(
            ClusterSpec::new(8)
                .with_capacity(2)
                .with_routing(RoutingPolicy::LoadAware),
        );
        let a = run_cluster(&bench, &c);
        let b = run_cluster(&bench, &c);
        assert_same_cluster_run(&a, &b);
    }

    #[test]
    fn every_arrival_is_served_exactly_once_within_capacity() {
        for routing in RoutingPolicy::ALL {
            let c = contended(PolicyKind::RequestCentric, 4)
                .with_cluster(ClusterSpec::new(4).with_capacity(2).with_routing(routing));
            let bench = by_name("DFS").unwrap();
            let r = run_cluster(&bench, &c);
            assert_eq!(r.served(), 120, "{routing:?}");
            assert_eq!(r.result.latencies_us.len(), 120, "{routing:?}");
            for node in &r.nodes {
                assert!(
                    node.peak_workers <= c.cluster.capacity,
                    "{routing:?}: node {} peaked at {}",
                    node.node,
                    node.peak_workers
                );
                assert_eq!(node.local_hits + node.remote_misses, node.restores);
            }
            let provisioned: u64 = r.nodes.iter().map(|n| n.cold_starts + n.restores).sum();
            assert_eq!(provisioned, r.result.provisions.len() as u64, "{routing:?}");
        }
    }

    #[test]
    fn hash_routing_never_leaves_the_ring_owner() {
        let bench = by_name("Hash").unwrap();
        let c = contended(PolicyKind::RequestCentric, 4)
            .with_cluster(ClusterSpec::new(4).with_capacity(2));
        let r = run_cluster(&bench, &c);
        assert_eq!(r.spillovers(), 0);
        let busy: Vec<_> = r.nodes.iter().filter(|n| n.served > 0).collect();
        assert_eq!(busy.len(), 1, "hash routing pins one function to one node");
        // Saturation shows up as queueing, not as spillover.
        assert!(r.total_queue_delay_us() > 0.0);
        // All checkpoints and restores stay on the owner: perfect locality.
        assert_eq!(r.locality.remote_misses, 0);
    }

    #[test]
    fn spillover_happens_only_under_saturation() {
        let bench = by_name("Hash").unwrap();
        let spec = ClusterSpec::new(4)
            .with_capacity(2)
            .with_routing(RoutingPolicy::LoadAware);
        // At the paper's 60 s gap the owner is always free: no spillover,
        // and the run matches pure hash routing exactly.
        let calm = run_cluster(
            &bench,
            &cfg(PolicyKind::RequestCentric, 4).with_cluster(spec),
        );
        assert_eq!(calm.spillovers(), 0);
        assert_eq!(calm.nodes.iter().filter(|n| n.served > 0).count(), 1);
        // Under contention the owner saturates and successors pick up load.
        let hot = run_cluster(
            &bench,
            &contended(PolicyKind::RequestCentric, 4).with_cluster(spec),
        );
        assert!(hot.spillovers() > 0);
        assert!(hot.nodes.iter().filter(|n| n.served > 0).count() > 1);
    }

    #[test]
    fn remote_misses_pay_transfer_bytes_and_age() {
        let bench = by_name("Hash").unwrap();
        let spec = ClusterSpec::new(4)
            .with_capacity(1)
            .with_routing(RoutingPolicy::LoadAware);
        let r = run_cluster(
            &bench,
            &contended(PolicyKind::RequestCentric, 1).with_cluster(spec),
        );
        // Spilled-over restores fetch blobs checkpointed on other nodes.
        assert!(r.locality.remote_misses > 0, "{:?}", r.locality);
        assert!(r.locality.remote_bytes > 0);
        assert!(r.locality.remote_us > 0.0);
        assert!(r.locality.remote_age_us > 0.0);
        assert!(r.locality_hit_rate() < 1.0);
        // Every restored byte is either a store download or a cross-node
        // transfer — the conservation law the ablation reports ride on.
        assert_eq!(
            r.result.restore_bytes(),
            r.result.overheads.nominal_bytes_downloaded + r.locality.remote_bytes
        );
        // The same run on one node has no remote dimension at all.
        let single = run_cluster(
            &bench,
            &contended(PolicyKind::RequestCentric, 1).with_cluster(ClusterSpec::single_node()),
        );
        assert_eq!(single.locality.remote_misses, 0);
        assert_eq!(single.locality.remote_age_us, 0.0);
        assert_eq!(
            single.result.restore_bytes(),
            single.result.overheads.nominal_bytes_downloaded
        );
    }

    #[test]
    fn replicate_placement_trades_background_bytes_for_hits() {
        let bench = by_name("Hash").unwrap();
        let local = ClusterSpec::new(4)
            .with_capacity(1)
            .with_routing(RoutingPolicy::LoadAware);
        let repl = local.with_placement(PlacementPolicy::Replicate);
        let c = contended(PolicyKind::RequestCentric, 1);
        let l = run_cluster(&bench, &c.with_cluster(local));
        let r = run_cluster(&bench, &c.with_cluster(repl));
        assert_eq!(r.locality.remote_misses, 0, "replication prefills nodes");
        assert_eq!(r.locality_hit_rate(), 1.0);
        assert!(r.locality.replicated_bytes > 0);
        assert_eq!(l.locality.replicated_bytes, 0);
        assert!(l.locality.remote_misses > 0);
    }
}

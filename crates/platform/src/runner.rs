//! The experiment runners: closed-loop (Figures 4–5) and trace-driven
//! (Figure 6) evaluation protocols.

use crate::config::RunConfig;
use crate::result::{ProvisionKind, RunResult};
use crate::stale::IoStaleModel;
use crate::worker::{DeltaTracking, Worker};
use pronghorn_checkpoint::{
    delta::dirty_nominal_bytes, CheckpointScratch, Checkpointable, DeltaBase, SimCriuEngine,
    Snapshot, SnapshotId, SnapshotMeta,
};
use pronghorn_core::{baselines::make_policy, Orchestrator};
use pronghorn_forecast::{PreRestorePlan, ProvisionStats, Provisioner};
use pronghorn_jit::Runtime;
use pronghorn_kv::KvStore;
use pronghorn_metrics::Histogram;
use pronghorn_restore::{
    FaultCostModel, LazyImage, PageMap, PagedSnapshotStore, RestoreInfo, RestoreStrategy,
    DEFAULT_PAGE_SIZE,
};
use pronghorn_sim::{Kernel, RngFactory, SimDuration, SimTime};
use pronghorn_store::{saturating_accumulate, ObjectStore, StorageStats, TransferModel};
use pronghorn_traces::Trace;
use pronghorn_workloads::Workload;
use rand::rngs::SmallRng;
use std::collections::{BTreeSet, VecDeque};

/// Selection penalty (µs) the record-&-prefetch strategy charges pooled
/// snapshots that have no recorded working-set manifest yet: restoring one
/// means paying the recording restore (map + demand faults) instead of a
/// batched prefetch. Folded into snapshot weights harmonically, so it
/// biases — never vetoes — selection toward prefetch-ready snapshots.
const RECORD_PREFETCH_PENALTY_US: f64 = 10_000.0;

/// How many future arrivals [`run_production`] keeps scheduled in the
/// kernel at once. Arrivals stream in sorted, so a bounded window is
/// lossless; it keeps kernel memory O(lookahead) instead of
/// O(invocations) over an hours-long trace.
const PRODUCTION_LOOKAHEAD: usize = 1 << 16;

/// Sentinel event payloads for predictive provisioning, carried in the
/// same `u64` kernel payload as arrival indices (which stay far below
/// them). [`ProvisionPolicy::Disabled`] schedules none of these, so the
/// reactive event stream is byte-identical to runs predating them.
///
/// [`ProvisionPolicy::Disabled`]: pronghorn_forecast::ProvisionPolicy::Disabled
pub(crate) const PRE_RESTORE_EVENT: u64 = u64::MAX;
/// Keep-alive expiry of an unused pre-restored worker (see
/// [`PRE_RESTORE_EVENT`]).
pub(crate) const PRE_WARM_EXPIRY_EVENT: u64 = u64::MAX - 1;
/// Idle-eviction probe [`run_production`] schedules so a worker slot can
/// go cold — and be predictively re-warmed — *between* arrivals, not
/// only when the next arrival happens to look.
pub(crate) const IDLE_CHECK_EVENT: u64 = u64::MAX - 2;

/// Simulated time of background IO-state freshening equivalent to one
/// served request's worth of staleness decay: a pre-warmed worker
/// re-establishes connections, leases and caches while it waits, so a
/// long enough lead erases the stale-IO penalty the first post-restore
/// requests would otherwise pay.
const PREWARM_REQUEST_US: u64 = 2_000_000;

/// Where a restored worker's snapshot came from — what the cluster layer
/// needs to price locality: the blob id, the nominal bytes the store
/// shipped (composed chain sum under delta), and the chain length a
/// remote fetch must walk link by link.
pub(crate) struct RestoredFrom {
    pub(crate) id: SnapshotId,
    pub(crate) nominal: u64,
    pub(crate) chain_len: usize,
    /// Content hash of the restored payload — the storage tier's
    /// deterministic compression seed for pricing cross-node transfers.
    pub(crate) seed: u64,
}

/// Expected worker lifetimes over `invocations` requests at the given
/// eviction rate — the preallocation size for provisioning-shaped
/// accumulators (`+ 1` covers a trailing partial lifetime).
fn lifetimes(invocations: usize, eviction_rate: u32) -> usize {
    invocations / eviction_rate.max(1) as usize + 1
}

/// O(1)-memory running aggregates, used instead of the per-invocation
/// `Vec` accumulators when a [`Session`] runs in streaming mode
/// (production-scale replays where only summary statistics are wanted).
struct StreamAgg {
    /// Log-bucketed latency distribution (µs); 1% bucket growth keeps
    /// quantile error ≪ the paper's reporting precision.
    latency: Histogram,
    latency_max: f64,
    cold_starts: u64,
    restores: u64,
    checkpoints: u64,
    checkpoint_ms_total: f64,
    restore_ms_total: f64,
    snapshot_mb_total: f64,
    restore_faults: u64,
}

impl StreamAgg {
    fn new() -> Self {
        StreamAgg {
            latency: Histogram::new(1.0, 1e9, 1.01).expect("static bounds are valid"),
            latency_max: 0.0,
            cold_starts: 0,
            restores: 0,
            checkpoints: 0,
            checkpoint_ms_total: 0.0,
            restore_ms_total: 0.0,
            snapshot_mb_total: 0.0,
            restore_faults: 0,
        }
    }
}

/// Summary statistics of a [`run_production`] replay: everything the
/// kernel bench and capacity analyses need, O(1) in the invocation count.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionStats {
    /// Requests served.
    pub invocations: u64,
    /// Mean client-visible latency (µs).
    pub mean_latency_us: f64,
    /// Median client-visible latency (µs, log-bucketed estimate).
    pub p50_latency_us: f64,
    /// 99th-percentile latency (µs, log-bucketed estimate).
    pub p99_latency_us: f64,
    /// Largest observed latency (µs, exact).
    pub max_latency_us: f64,
    /// Workers provisioned from a cold boot.
    pub cold_starts: u64,
    /// Workers provisioned from a snapshot restore.
    pub restores: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total checkpoint downtime (ms).
    pub checkpoint_ms_total: f64,
    /// Total critical-path restore time (ms).
    pub restore_ms_total: f64,
    /// Total nominal snapshot bytes checkpointed (MB).
    pub snapshot_mb_total: f64,
    /// Total demand faults paid by lazy restores.
    pub restore_faults: u64,
    /// Total off-critical-path provisioning time (µs).
    pub provision_us_total: f64,
    /// Predictive pre-restore accounting (all zeros when provisioning is
    /// disabled).
    pub provisioning: ProvisionStats,
    /// Storage-hierarchy accounting (all zeros when tiered storage is
    /// disabled).
    pub storage: StorageStats,
    /// Timestamp of the last served arrival.
    pub end_time: SimTime,
    /// Largest number of events pending in the kernel at once (bounded by
    /// the arrival lookahead window).
    pub peak_pending_events: usize,
}

/// Shared machinery of the runners (including the cluster runner in
/// [`crate::cluster`], which drives one shared session across N nodes).
pub(crate) struct Session<'w> {
    workload: &'w dyn Workload,
    cfg: RunConfig,
    pub(crate) orch: Orchestrator,
    engine: SimCriuEngine,
    /// Encoder scratch + dirty-tracking cache, reused across checkpoints.
    scratch: CheckpointScratch,
    factory: RngFactory,
    policy_rng: SmallRng,
    engine_rng: SmallRng,
    stale: IoStaleModel,
    policy_w: u32,
    worker_seq: u64,
    store: ObjectStore,
    /// Page-granular store view; `Some` iff the strategy is non-eager.
    paged: Option<PagedSnapshotStore>,
    fault_costs: FaultCostModel,
    transfer: TransferModel,
    // Accumulators. In the default (paper) mode these are per-event Vecs,
    // preallocated from the expected invocation count so they never grow
    // by repeated push reallocation; in streaming mode they stay empty and
    // `stream` holds O(1) running aggregates instead.
    pub(crate) latencies: Vec<f64>,
    provisions: Vec<ProvisionKind>,
    checkpoint_ms: Vec<f64>,
    restore_ms: Vec<f64>,
    snapshot_mb: Vec<f64>,
    snapshot_requests: Vec<u32>,
    pub(crate) provision_us: f64,
    served_total: u32,
    restore_infos: Vec<RestoreInfo>,
    stream: Option<StreamAgg>,
    /// Predictive-provisioning decision state; `None` when disabled, so
    /// the reactive path carries (and mutates) nothing.
    provisioner: Option<Provisioner>,
    /// Pre-restore accounting for the run.
    pub(crate) provisioning: ProvisionStats,
    /// Keep-alives of planned-but-not-yet-fired pre-restores, popped in
    /// kernel order (plans fire strictly after they are made, and the
    /// kernel is FIFO across monotone schedule times).
    pending_keepalives: VecDeque<SimDuration>,
    /// Image size of the most recently provisioned worker — the MPC
    /// arm's estimate of what a pre-restored worker would hold warm.
    last_image_bytes: u64,
}

impl<'w> Session<'w> {
    /// A session recording every per-invocation measurement, preallocated
    /// for `expected` invocations.
    pub(crate) fn new(workload: &'w dyn Workload, cfg: RunConfig, expected: usize) -> Self {
        Session::build(workload, cfg, expected, None)
    }

    /// A session keeping only O(1) running aggregates — memory stays
    /// O(workers) no matter how many invocations stream through.
    fn streaming(workload: &'w dyn Workload, cfg: RunConfig) -> Self {
        Session::build(workload, cfg, 0, Some(StreamAgg::new()))
    }

    fn build(
        workload: &'w dyn Workload,
        cfg: RunConfig,
        expected: usize,
        stream: Option<StreamAgg>,
    ) -> Self {
        let factory = RngFactory::new(cfg.seed);
        let kv = KvStore::new();
        let store = ObjectStore::new();
        let mut policy_config = cfg.resolve_policy_config(workload.kind());
        if cfg.restore == RestoreStrategy::RecordPrefetch {
            policy_config = policy_config.with_restore_penalty(RECORD_PREFETCH_PENALTY_US);
        }
        let policy = make_policy(cfg.policy, policy_config);
        let mut orch = Orchestrator::new(policy, kv, store.clone(), workload.name());
        if cfg.restore != RestoreStrategy::Eager {
            orch = orch.with_paging(DEFAULT_PAGE_SIZE);
        }
        if cfg.delta.enabled() {
            orch = orch.with_delta_chains();
        }
        if cfg.storage.enabled() {
            orch = orch.with_storage(cfg.storage);
        }
        let paged = orch.paged_store();
        Session {
            workload,
            cfg,
            orch,
            engine: SimCriuEngine::new(),
            scratch: CheckpointScratch::new(),
            policy_rng: factory.stream("policy"),
            engine_rng: factory.stream("engine"),
            factory,
            stale: IoStaleModel::default(),
            policy_w: policy_config.w,
            worker_seq: 0,
            store,
            paged,
            fault_costs: FaultCostModel::default(),
            transfer: TransferModel::default(),
            latencies: Vec::with_capacity(expected),
            // A worker serves `eviction_rate` requests per lifetime, so
            // provisioning-shaped accumulators need roughly one entry per
            // lifetime (checkpoints are bounded by lifetimes too — each
            // worker snapshots at most once in every policy in-tree).
            provisions: Vec::with_capacity(lifetimes(expected, cfg.eviction_rate)),
            checkpoint_ms: Vec::with_capacity(lifetimes(expected, cfg.eviction_rate)),
            restore_ms: Vec::with_capacity(lifetimes(expected, cfg.eviction_rate)),
            snapshot_mb: Vec::with_capacity(lifetimes(expected, cfg.eviction_rate)),
            snapshot_requests: Vec::with_capacity(lifetimes(expected, cfg.eviction_rate)),
            provision_us: 0.0,
            served_total: 0,
            restore_infos: Vec::with_capacity(lifetimes(expected, cfg.eviction_rate)),
            stream,
            provisioner: Provisioner::new(cfg.provision),
            provisioning: ProvisionStats::default(),
            pending_keepalives: VecDeque::new(),
            last_image_bytes: 0,
        }
    }

    /// Records one client-visible latency.
    fn record_latency(&mut self, latency_us: f64) {
        match &mut self.stream {
            Some(agg) => {
                agg.latency.record(latency_us.max(1.0));
                if latency_us > agg.latency_max {
                    agg.latency_max = latency_us;
                }
            }
            None => self.latencies.push(latency_us),
        }
    }

    /// Records one worker provision.
    fn record_provision(&mut self, kind: ProvisionKind) {
        match &mut self.stream {
            Some(agg) => match kind {
                ProvisionKind::Cold => agg.cold_starts += 1,
                ProvisionKind::Restored(_) => agg.restores += 1,
            },
            None => self.provisions.push(kind),
        }
    }

    /// Records one restore's critical-path cost.
    fn record_restore_ms(&mut self, ms: f64) {
        match &mut self.stream {
            Some(agg) => agg.restore_ms_total += ms,
            None => self.restore_ms.push(ms),
        }
    }

    /// Records one checkpoint's downtime, snapshot size and request number.
    fn record_checkpoint(&mut self, downtime_ms: f64, size_mb: f64, request_number: u32) {
        match &mut self.stream {
            Some(agg) => {
                agg.checkpoints += 1;
                agg.checkpoint_ms_total += downtime_ms;
                agg.snapshot_mb_total += size_mb;
            }
            None => {
                self.checkpoint_ms.push(downtime_ms);
                self.snapshot_mb.push(size_mb);
                self.snapshot_requests.push(request_number);
            }
        }
    }

    /// Provisions a worker per the orchestration policy — entirely off the
    /// request critical path (§5.3).
    fn provision(&mut self, now: SimTime) -> Worker {
        self.provision_traced(now).0
    }

    /// Like [`Self::provision`], but also reporting which snapshot the
    /// worker restored from (and what the store shipped) — the cluster
    /// runner's hook for locality accounting. `None` origin means a cold
    /// boot (including the corrupt-snapshot degradation path).
    pub(crate) fn provision_traced(&mut self, now: SimTime) -> (Worker, Option<RestoredFrom>) {
        // A new worker is a new process instance: its state-version counter
        // restarts, so the encode cache must not match across instances.
        self.scratch.invalidate();
        let plan = self.orch.begin_worker(&mut self.policy_rng);
        let mut provision_us = plan.startup_overhead.as_micros() as f64;
        let wrng = self.factory.stream_indexed("worker", self.worker_seq);
        self.worker_seq += 1;

        let mut origin = None;
        let (runtime, resume, restore, image, delta) = match plan.snapshot {
            Some(snapshot) => match self.restore_worker(&snapshot, plan.download_nominal) {
                Some((runtime, info, image)) => {
                    provision_us += info.restore_us;
                    self.record_restore_ms(info.restore_us / 1_000.0);
                    origin = Some(RestoredFrom {
                        id: snapshot.id,
                        nominal: plan.download_nominal,
                        chain_len: self
                            .orch
                            .chain_depth(snapshot.id)
                            .map_or(1, |d| d as usize + 1),
                        seed: snapshot.payload_hash(),
                    });
                    // The restored snapshot becomes the worker's prospective
                    // delta parent: keep its payload as the diff base and
                    // start an empty dirty-page set.
                    let delta = self.cfg.delta.enabled().then(|| DeltaTracking {
                        parent_id: snapshot.id,
                        parent_payload: snapshot.payload.clone(),
                        parent_hash: snapshot.payload_hash(),
                        parent_depth: self.orch.chain_depth(snapshot.id).unwrap_or(0),
                        parent_page_count: snapshot.nominal_size.div_ceil(DEFAULT_PAGE_SIZE) as u32,
                        dirty_pages: BTreeSet::new(),
                    });
                    (runtime, plan.resume_request, Some(info), image, delta)
                }
                None => {
                    // Corrupt snapshot: degrade to a cold start.
                    let mut boot_rng = self.factory.stream_indexed("boot", self.worker_seq);
                    let (rt, cost) = Runtime::cold_start(
                        self.workload.runtime_profile(),
                        self.workload.method_profiles(),
                        &mut boot_rng,
                    );
                    provision_us += cost.as_micros() as f64;
                    (rt, 0, None, None, None)
                }
            },
            None => {
                let mut boot_rng = self.factory.stream_indexed("boot", self.worker_seq);
                let (rt, cost) = Runtime::cold_start(
                    self.workload.runtime_profile(),
                    self.workload.method_profiles(),
                    &mut boot_rng,
                );
                provision_us += cost.as_micros() as f64;
                (rt, 0, None, None, None)
            }
        };
        self.provision_us += provision_us;
        self.record_provision(if restore.is_some() {
            ProvisionKind::Restored(resume)
        } else {
            ProvisionKind::Cold
        });

        let mut worker = Worker::new(runtime, wrng, resume, plan.checkpoint_at, restore, now);
        worker.image = image;
        worker.delta = delta;
        self.last_image_bytes = worker.runtime.image_size_bytes();
        // An immediately-due plan (e.g. checkpoint-after-init's request 0)
        // snapshots before the first request is served.
        self.maybe_checkpoint(&mut worker);
        (worker, origin)
    }

    /// Materializes a runtime from `snapshot` under the configured restore
    /// strategy; `None` means the snapshot is corrupt and the caller
    /// degrades to a cold start. The eager arm is the pre-paging engine
    /// path verbatim — exactly one cost sample from the engine RNG stream —
    /// so eager runs stay bit-identical. The lazy arms decode without
    /// consuming any RNG ([`SimCriuEngine::restore_mapped`]) and charge
    /// only the page-table mapping (plus, with a recorded working set, one
    /// batched prefetch) up front; the rest is paid via demand faults
    /// during [`Session::serve`].
    fn restore_worker(
        &mut self,
        snapshot: &Snapshot,
        download_nominal: u64,
    ) -> Option<(Runtime, RestoreInfo, Option<LazyImage>)> {
        match self.cfg.restore {
            RestoreStrategy::Eager => {
                let (runtime, cost) = self
                    .engine
                    .restore::<Runtime, _>(&mut self.engine_rng, snapshot)
                    .ok()?;
                // `download_nominal` is what the store actually shipped:
                // the full image for a chain root, the root plus every
                // delta's dirty bytes for a composed restore. With delta
                // off it equals `snapshot.nominal_size` exactly.
                let info = RestoreInfo::eager(cost.as_micros() as f64, download_nominal);
                Some((runtime, info, None))
            }
            RestoreStrategy::Lazy => {
                let runtime = self.engine.restore_mapped::<Runtime>(snapshot).ok()?;
                let info = RestoreInfo {
                    strategy: RestoreStrategy::Lazy,
                    restore_us: self.fault_costs.map_base_us,
                    ..RestoreInfo::default()
                };
                let image =
                    LazyImage::new(self.workload.name(), snapshot.id.0, self.page_map(snapshot));
                Some((runtime, info, Some(image)))
            }
            RestoreStrategy::RecordPrefetch => {
                let runtime = self.engine.restore_mapped::<Runtime>(snapshot).ok()?;
                let function = self.workload.name();
                let mut info = RestoreInfo {
                    strategy: RestoreStrategy::RecordPrefetch,
                    restore_us: self.fault_costs.map_base_us,
                    ..RestoreInfo::default()
                };
                let recorded = self
                    .paged
                    .as_ref()
                    .and_then(|p| p.load_manifest(function, snapshot.id.0));
                let image = match recorded {
                    Some(manifest) => {
                        // A prior restore recorded this snapshot's working
                        // set: bulk-prefetch it in one batched transfer and
                        // fault only the cold tail.
                        let pages = manifest.to_sorted_vec();
                        let mut image =
                            LazyImage::new(function, snapshot.id.0, self.page_map(snapshot));
                        let bytes = match &self.paged {
                            Some(paged) => paged
                                .fetch_pages(function, snapshot.id.0, image.map(), &pages)
                                .unwrap_or(0),
                            None => 0,
                        };
                        image.mark_prefetched(&pages);
                        info.prefetched_pages = pages.len() as u32;
                        info.bytes_transferred = bytes;
                        // The prefetch batch is the restore critical path:
                        // price it through the storage tier when one is
                        // active (SSD bandwidth if the provisioning
                        // download staged the image locally, wire bytes +
                        // decompression from the store otherwise).
                        match self.orch.storage_mut() {
                            Some(tier) => {
                                let price =
                                    tier.read(snapshot.id.0, bytes, snapshot.payload_hash());
                                info.restore_us = self.fault_costs.prefetch_us(
                                    &price.model,
                                    price.billed_bytes,
                                    pages.len() as u32,
                                );
                                info.decompress_us = price.decompress_us;
                            }
                            None => {
                                info.restore_us = self.fault_costs.prefetch_us(
                                    &self.transfer,
                                    bytes,
                                    pages.len() as u32,
                                );
                            }
                        }
                        image
                    }
                    // First restore of this snapshot: record the working
                    // set; serve() persists it as the manifest.
                    None => {
                        LazyImage::with_recording(function, snapshot.id.0, self.page_map(snapshot))
                    }
                };
                Some((runtime, info, Some(image)))
            }
        }
    }

    /// The deterministic page decomposition of `snapshot`, matching what
    /// the orchestrator published into the page bucket.
    fn page_map(&self, snapshot: &Snapshot) -> PageMap {
        let page_size = self
            .paged
            .as_ref()
            .map_or(DEFAULT_PAGE_SIZE, PagedSnapshotStore::page_size);
        PageMap::for_snapshot(
            self.workload.name(),
            snapshot.payload_hash(),
            snapshot.nominal_size,
            page_size,
        )
    }

    /// Takes the planned checkpoint if the worker has reached it. Runs
    /// after the response is returned, so the downtime stays invisible to
    /// the client (§5.3).
    fn maybe_checkpoint(&mut self, worker: &mut Worker) {
        if !worker.checkpoint_due() {
            return;
        }
        // Provider-imposed cost bound (§5.3): once the configured number of
        // invocations has been served, the best snapshot stays in the pool
        // and no further checkpoints are taken.
        if let Some(stop) = self.cfg.stop_checkpointing_after {
            if self.served_total >= stop {
                worker.checkpoint_at = None;
                return;
            }
        }
        worker.checkpoint_at = None;
        let meta = SnapshotMeta {
            function: self.workload.name().to_string(),
            request_number: worker.runtime.requests_executed() as u32,
            runtime: self.workload.kind().label().to_string(),
        };
        // Checkpoint form: a delta against the restore parent while the
        // parent is still pooled and the chain has depth headroom; a
        // consolidating full root once the chain reaches the policy depth
        // (rebasing the lineage); a plain full root otherwise. Both engine
        // arms draw identical randomness, so the choice never shifts the
        // RNG streams of a seeded run.
        let mut consolidate = false;
        let base = worker.delta.as_ref().and_then(|t| {
            if !self.orch.chain_live(t.parent_id) {
                return None;
            }
            let depth = self.orch.chain_depth(t.parent_id).unwrap_or(0);
            // Tracking only exists when the policy is enabled, so K is Some.
            if depth >= self.cfg.delta.max_depth().unwrap_or(u32::MAX) {
                consolidate = true;
                return None;
            }
            Some(DeltaBase {
                parent: t.parent_id,
                parent_payload: t.parent_payload.clone(),
                parent_payload_hash: t.parent_hash,
                dirty_nominal_bytes: dirty_nominal_bytes(
                    &t.dirty_pages,
                    t.parent_page_count,
                    worker.runtime.image_size_bytes(),
                    DEFAULT_PAGE_SIZE,
                ),
            })
        });
        let (snapshot, outcome, downtime) = self.engine.checkpoint_delta_with(
            &mut self.scratch,
            &mut self.engine_rng,
            &worker.runtime,
            meta,
            base.as_ref(),
        );
        if consolidate {
            self.orch.note_consolidation();
        }
        self.record_checkpoint(
            downtime.as_millis_f64(),
            snapshot.nominal_size_mb(),
            snapshot.meta.request_number,
        );
        self.orch
            .record_snapshot_with(&snapshot, &outcome, downtime, &mut self.policy_rng);
    }

    /// Serves one request end to end, returning the client-visible latency.
    pub(crate) fn serve(&mut self, worker: &mut Worker, arrival_index: u64, now: SimTime) -> f64 {
        // Every runner serves exactly one request per arrival, so this is
        // the single point where the forecaster observes the arrival
        // process. A no-op (no state, no draws) when provisioning is off.
        if let Some(p) = self.provisioner.as_mut() {
            p.observe(now);
        }
        // A pre-restored worker resolves at its first request: the lead
        // time it waited both cost keep-alive byte-seconds and banked
        // IO-state freshening (prewarm credit) against the stale penalty.
        if let Some(since) = worker.pre_warmed_since.take() {
            let waited = now.saturating_since(since);
            worker.prewarm_credit =
                (waited.as_micros() / PREWARM_REQUEST_US).min(u64::from(u32::MAX)) as u32;
            self.provisioning.pre_restores_used += 1;
            self.provisioning.keepalive_byte_s +=
                worker.runtime.image_size_bytes() as f64 * waited.as_secs_f64();
            if let Some(p) = self.provisioner.as_mut() {
                p.note_resolved();
            }
        }
        let mut input_rng = self.factory.stream_indexed("input", arrival_index);
        let request = self.workload.generate(&mut input_rng, self.cfg.variance);
        let request_number = worker.next_request_number();
        let breakdown = worker.runtime.execute(&request, &mut worker.rng);
        let mut latency = breakdown.total_us();

        // Delta lineage: fold this request's deterministic page-access
        // trace into the dirty set — what an incremental engine's
        // soft-dirty tracking would report. The trace is pure (no RNG), so
        // enabling delta never perturbs the seeded streams.
        if let Some(tracking) = worker.delta.as_mut() {
            let trace = worker
                .runtime
                .page_access_trace(&request, tracking.parent_page_count);
            tracking.dirty_pages.extend(trace);
        }

        // Lazily-mapped images pay for first-touched pages on the request
        // critical path: each fault is a demand fetch from the store.
        if let Some(image) = worker.image.as_mut() {
            let trace = worker
                .runtime
                .page_access_trace(&request, image.map().page_count());
            let touches = image.first_touches(&trace);
            if !touches.is_empty() {
                let fetched = match &self.paged {
                    Some(paged) => paged
                        .fetch_pages(image.function(), image.snapshot_id(), image.map(), &touches)
                        .unwrap_or(0),
                    None => 0,
                };
                // Faults are served one at a time (no batching on the
                // demand path), so each pays the full service + transfer.
                // With a storage tier, each fault routes through it: SSD
                // bandwidth when the image is node-resident, wire bytes
                // plus per-page decompression from the store otherwise
                // (the page's content hash seeds its compression ratio).
                let (fault_us, fault_decompress_us) = match self.orch.storage_mut() {
                    Some(tier) => {
                        let mut service = 0.0;
                        let mut decompress = 0.0;
                        for &p in &touches {
                            let price = tier.read(
                                image.snapshot_id(),
                                image.map().page_len(p),
                                image.map().page_hash(p).unwrap_or(0),
                            );
                            service += self.fault_costs.fault_us(&price.model, price.billed_bytes);
                            decompress += price.decompress_us;
                        }
                        (service, decompress)
                    }
                    None => (
                        touches
                            .iter()
                            .map(|&p| {
                                self.fault_costs
                                    .fault_us(&self.transfer, image.map().page_len(p))
                            })
                            .sum(),
                        0.0,
                    ),
                };
                latency += fault_us + fault_decompress_us;
                if let Some(info) = worker.restore.as_mut() {
                    info.faults += touches.len() as u32;
                    info.fault_us += fault_us;
                    info.decompress_us += fault_decompress_us;
                    saturating_accumulate(
                        "bytes_transferred",
                        &mut info.bytes_transferred,
                        fetched,
                    );
                }
            }
            // A recording restore persists its working set once the trace
            // grows — but only while the snapshot is still pooled (an
            // evicted snapshot's manifest would leak forever).
            if image.recording_dirty() {
                if let (Some(paged), Some(manifest)) = (&self.paged, image.recording()) {
                    let id = SnapshotId(image.snapshot_id());
                    if self.orch.policy().snapshot_request_number(id).is_some() {
                        if let Ok(was_new) = paged.store_manifest(manifest) {
                            if was_new {
                                self.orch.note_manifest_recorded(id);
                            }
                        }
                    }
                }
                image.clear_dirty();
            }
        }

        // Restored processes re-establish stale IO state lazily; how much
        // of it there is to re-establish is workload-specific. Staleness
        // decays with requests served, so only *freshly* restored workers
        // pay it (the old `restored` bool conflated the two).
        // Prewarm credit ages the penalty down exactly as served requests
        // would; at credit zero (every reactive worker) this is
        // bit-identical to the old `freshly_restored` gate.
        let nth = worker.served.saturating_add(worker.prewarm_credit);
        if worker.restored() && nth < self.stale.horizon {
            // `stale_age` is nonzero only for cross-node restores; at age
            // zero the aged path is bit-identical to `penalty_frac`.
            latency += request.io_us
                * self.workload.io_stale_sensitivity()
                * self.stale.penalty_frac_aged(
                    worker.resume_request,
                    self.policy_w,
                    nth,
                    worker.stale_age,
                );
        }

        self.record_latency(latency);
        self.served_total += 1;
        self.orch
            .complete_request(request_number.min(u64::from(u32::MAX)) as u32, latency);
        worker.served += 1;
        worker.last_active = now;
        self.maybe_checkpoint(worker);
        latency
    }

    /// Retires a worker at eviction (or end of run), harvesting its
    /// accumulated restore/fault statistics. A still-pre-warmed worker
    /// retires as a *wasted* pre-restore: it paid keep-alive without ever
    /// serving.
    pub(crate) fn retire(&mut self, worker: Worker, now: SimTime) {
        if let Some(since) = worker.pre_warmed_since {
            let waited = now.saturating_since(since);
            self.provisioning.pre_restores_wasted += 1;
            self.provisioning.keepalive_byte_s +=
                worker.runtime.image_size_bytes() as f64 * waited.as_secs_f64();
            if let Some(p) = self.provisioner.as_mut() {
                p.note_resolved();
            }
        }
        if let Some(info) = worker.restore {
            match &mut self.stream {
                Some(agg) => agg.restore_faults += u64::from(info.faults),
                None => self.restore_infos.push(info),
            }
        }
    }

    /// Whether predictive provisioning is active for this run.
    pub(crate) fn provision_enabled(&self) -> bool {
        self.provisioner.is_some()
    }

    /// Plans a pre-restore for a worker slot that just went cold: `Some`
    /// is the kernel time at which to fire [`PRE_RESTORE_EVENT`], with
    /// the plan's keep-alive queued for [`Self::pre_restore`] (or
    /// [`Self::cancel_pre_restore`]) to consume when it does. Reserves
    /// provisioning budget immediately so back-to-back evictions cannot
    /// over-issue.
    pub(crate) fn plan_pre_restore(&mut self, now: SimTime) -> Option<SimTime> {
        let image_bytes = self.last_image_bytes;
        let provisioner = self.provisioner.as_mut()?;
        let PreRestorePlan { at, keepalive } = provisioner.plan(now, image_bytes)?;
        provisioner.note_issued();
        self.pending_keepalives.push_back(keepalive);
        Some(at)
    }

    /// Drops a planned pre-restore whose event fired into an occupied
    /// slot (a reactive provision beat it), releasing its budget.
    pub(crate) fn cancel_pre_restore(&mut self) {
        self.pending_keepalives.pop_front();
        if let Some(p) = self.provisioner.as_mut() {
            p.note_resolved();
        }
    }

    /// Provisions a worker ahead of demand (a *pre-restore*): the normal
    /// provisioning path plus background hydration of the lazy image,
    /// all charged off the critical path. The caller schedules
    /// [`PRE_WARM_EXPIRY_EVENT`] at the returned worker's
    /// `pre_warm_expires`.
    pub(crate) fn pre_restore(&mut self, now: SimTime) -> Worker {
        let mut worker = self.provision(now);
        self.mark_pre_restored(&mut worker, now);
        worker
    }

    /// Marks an already-provisioned worker pre-warmed at `now` (consuming
    /// the oldest planned keep-alive) and hydrates its lazy image in the
    /// background: every absent page is pulled in one batched prefetch,
    /// so the predicted burst's first requests demand-fault nothing. The
    /// hydration bytes stay out of `bytes_transferred` — that counter
    /// means "shipped on the restore path" to the cluster's byte
    /// conservation — and out of the recording manifest, which must keep
    /// reflecting what requests actually touch.
    pub(crate) fn mark_pre_restored(&mut self, worker: &mut Worker, now: SimTime) {
        let keepalive = self.pending_keepalives.pop_front().unwrap_or_else(|| {
            self.provisioner
                .as_ref()
                .map_or(SimDuration::ZERO, Provisioner::horizon)
        });
        worker.pre_warmed_since = Some(now);
        worker.pre_warm_expires = now + keepalive;
        self.provisioning.pre_restores_issued += 1;
        if let Some(image) = worker.image.as_mut() {
            let absent = image.absent_pages();
            if !absent.is_empty() {
                let fetched = match &self.paged {
                    Some(paged) => paged
                        .fetch_pages(image.function(), image.snapshot_id(), image.map(), &absent)
                        .unwrap_or(0),
                    None => 0,
                };
                image.mark_prefetched(&absent);
                self.provision_us +=
                    self.fault_costs
                        .prefetch_us(&self.transfer, fetched, absent.len() as u32);
                if let Some(info) = worker.restore.as_mut() {
                    info.prefetched_pages =
                        info.prefetched_pages.saturating_add(absent.len() as u32);
                }
            }
        }
    }

    /// Clears the measurement accumulators while keeping all learned state
    /// (orchestrator knowledge, pooled snapshots, object-store contents) —
    /// used to measure a window of an already-deployed function.
    fn reset_measurements(&mut self) {
        self.latencies.clear();
        self.provisions.clear();
        self.checkpoint_ms.clear();
        self.restore_ms.clear();
        self.snapshot_mb.clear();
        self.snapshot_requests.clear();
        self.provision_us = 0.0;
        self.restore_infos.clear();
        self.provisioning = ProvisionStats::default();
        if let Some(agg) = &mut self.stream {
            *agg = StreamAgg::new();
        }
    }

    pub(crate) fn finish(self) -> RunResult {
        debug_assert!(
            self.stream.is_none(),
            "streaming sessions report via finish_production"
        );
        RunResult {
            workload: self.workload.name().to_string(),
            policy: self.cfg.policy,
            eviction_rate: self.cfg.eviction_rate,
            latencies_us: self.latencies,
            overheads: *self.orch.overheads(),
            store_stats: self.store.stats(),
            provisions: self.provisions,
            checkpoint_ms: self.checkpoint_ms,
            restore_ms: self.restore_ms,
            snapshot_mb: self.snapshot_mb,
            snapshot_requests: self.snapshot_requests,
            provision_us: self.provision_us,
            codec: *self.scratch.stats(),
            restore_strategy: self.cfg.restore,
            restore_infos: self.restore_infos,
            chain: self.orch.chain_stats(),
            provisioning: self.provisioning,
            storage: self.orch.storage_stats(),
        }
    }

    /// Collapses a streaming session into [`ProductionStats`].
    fn finish_production(self, end_time: SimTime, peak_pending_events: usize) -> ProductionStats {
        let storage = self.orch.storage_stats();
        let agg = self
            .stream
            .expect("production sessions run in streaming mode");
        ProductionStats {
            invocations: agg.latency.count(),
            mean_latency_us: agg.latency.mean(),
            p50_latency_us: agg.latency.quantile(0.5),
            p99_latency_us: agg.latency.quantile(0.99),
            max_latency_us: agg.latency_max,
            cold_starts: agg.cold_starts,
            restores: agg.restores,
            checkpoints: agg.checkpoints,
            checkpoint_ms_total: agg.checkpoint_ms_total,
            restore_ms_total: agg.restore_ms_total,
            snapshot_mb_total: agg.snapshot_mb_total,
            restore_faults: agg.restore_faults,
            provision_us_total: self.provision_us,
            provisioning: self.provisioning,
            storage,
            end_time,
            peak_pending_events,
        }
    }

    /// Prices a cross-node fetch of `origin`'s blob over the `remote`
    /// link: the legacy serial chain walk without a storage tier, or —
    /// with one — a single batched fetch of the composed image's wire
    /// bytes (the per-page newest-writer resolution already collapsed the
    /// chain, so re-paying per-link latency across the cluster would
    /// double-walk it). Nominal byte accounting is the caller's.
    pub(crate) fn remote_fetch_price(
        &self,
        origin: &RestoredFrom,
        remote: &TransferModel,
    ) -> SimDuration {
        match self.orch.storage() {
            Some(tier) => tier.price_remote_fetch(origin.nominal, origin.seed, remote),
            None => remote.chained_transfer_time(origin.nominal, origin.chain_len.max(1)),
        }
    }

    /// Lands a remotely fetched image on this node's SSD tier (no-op
    /// without one) with the snapshot's θ-weight as admission priority.
    pub(crate) fn note_remote_fetched(&mut self, origin: &RestoredFrom) {
        let weight = self.orch.snapshot_weight(origin.id);
        if let Some(tier) = self.orch.storage_mut() {
            tier.admit(origin.id.0, origin.nominal, weight, &[]);
        }
    }
}

/// Runs the §5.1 closed-loop protocol: `cfg.invocations` requests with a
/// fixed eviction rate, returning every measurement the paper's tables and
/// figures need.
///
/// # Examples
///
/// ```
/// use pronghorn_core::PolicyKind;
/// use pronghorn_platform::{run_closed_loop, RunConfig};
/// use pronghorn_workloads::by_name;
///
/// let workload = by_name("DynamicHTML").unwrap();
/// let cfg = RunConfig::paper(PolicyKind::RequestCentric, 1, 42).with_invocations(50);
/// let result = run_closed_loop(&workload, &cfg);
/// assert_eq!(result.latencies_us.len(), 50);
/// assert!(result.median_us() > 0.0);
/// ```
pub fn run_closed_loop(workload: &dyn Workload, cfg: &RunConfig) -> RunResult {
    let mut session = Session::new(workload, *cfg, cfg.invocations as usize);
    let mut worker: Option<Worker> = None;
    // Arrivals self-schedule through the kernel: arrival `i` fires at
    // `(i + 1) * request_gap`, exactly the instants of the historical
    // `now += gap` loop, so results are byte-identical on either kernel.
    let mut kernel: Kernel<u64> = Kernel::new(cfg.kernel);
    let total = u64::from(cfg.invocations);
    if total > 0 {
        kernel.schedule(SimTime::ZERO + cfg.request_gap, 0);
    }
    let mut last_now = SimTime::ZERO;
    while let Some((now, event)) = kernel.pop() {
        last_now = now;
        match event {
            PRE_RESTORE_EVENT => {
                if worker.is_none() {
                    let w = session.pre_restore(now);
                    kernel.schedule(w.pre_warm_expires, PRE_WARM_EXPIRY_EVENT);
                    worker = Some(w);
                } else {
                    session.cancel_pre_restore();
                }
                continue;
            }
            PRE_WARM_EXPIRY_EVENT => {
                let expired = worker
                    .as_ref()
                    .is_some_and(|w| w.pre_warmed_since.is_some() && now >= w.pre_warm_expires);
                if expired {
                    if let Some(w) = worker.take() {
                        session.retire(w, now);
                    }
                    // The slot went cold again; re-plan from the (now
                    // more decayed) forecast.
                    if let Some(at) = session.plan_pre_restore(now) {
                        kernel.schedule(at, PRE_RESTORE_EVENT);
                    }
                }
                continue;
            }
            _ => {}
        }
        let i = event;
        let mut w = match worker.take() {
            Some(w) => w,
            None => session.provision(now),
        };
        session.serve(&mut w, i, now);
        // Evict after the configured number of requests; otherwise the
        // worker stays warm for the next request.
        if w.served < cfg.eviction_rate {
            worker = Some(w);
        } else {
            session.retire(w, now);
            if let Some(at) = session.plan_pre_restore(now) {
                kernel.schedule(at, PRE_RESTORE_EVENT);
            }
        }
        if i + 1 < total {
            kernel.schedule(now + cfg.request_gap, i + 1);
        }
    }
    if let Some(w) = worker.take() {
        session.retire(w, last_now);
    }
    session.finish()
}

/// Runs the Figure 6 trace-driven protocol: arrivals from an Azure-like
/// trace, workers evicted after `cfg.idle_timeout` of inactivity.
pub fn run_trace(workload: &dyn Workload, cfg: &RunConfig, trace: &Trace) -> RunResult {
    run_trace_with_history(workload, cfg, trace, 0)
}

/// Runs the trace protocol against an *already-deployed* function: first
/// replays `history_invocations` closed-loop requests (the function's past
/// production traffic, during which the policy learns and the pool fills),
/// then measures the 15-minute trace window. Only the window's requests
/// are reported.
pub fn run_trace_with_history(
    workload: &dyn Workload,
    cfg: &RunConfig,
    trace: &Trace,
    history_invocations: u32,
) -> RunResult {
    let expected = history_invocations as usize + trace.len();
    let mut session = Session::new(workload, *cfg, expected);

    // Deployment history: same protocol (and arrival instants) as the
    // closed loop.
    let mut worker: Option<Worker> = None;
    let mut kernel: Kernel<u64> = Kernel::new(cfg.kernel);
    let history = u64::from(history_invocations);
    if history > 0 {
        kernel.schedule(SimTime::ZERO + cfg.request_gap, 0);
    }
    let mut last_now = SimTime::ZERO;
    while let Some((now, i)) = kernel.pop() {
        last_now = now;
        let mut w = match worker.take() {
            Some(w) => w,
            None => session.provision(now),
        };
        session.serve(&mut w, i, now);
        if w.served < cfg.eviction_rate {
            worker = Some(w);
        } else {
            session.retire(w, now);
        }
        if i + 1 < history {
            kernel.schedule(now + cfg.request_gap, i + 1);
        }
    }
    if let Some(w) = worker.take() {
        session.retire(w, last_now);
    }
    // The measured window starts with whatever state the deployment has;
    // in-flight workers from the history are evicted (the window is a
    // fresh 15 minutes much later). A fresh kernel restarts the clock at
    // the window origin — the history clock has run far past it.
    session.reset_measurements();

    let mut kernel: Kernel<u64> = Kernel::new(cfg.kernel);
    for (i, &arrival) in trace.arrivals().iter().enumerate() {
        kernel.schedule(arrival, history + i as u64);
    }
    let mut worker: Option<Worker> = None;
    let mut last_arrival = SimTime::ZERO;
    while let Some((arrival, i)) = kernel.pop() {
        last_arrival = arrival;
        // Idle eviction.
        let idle = worker
            .as_ref()
            .is_some_and(|w| arrival.saturating_since(w.last_active) > cfg.idle_timeout);
        if idle {
            if let Some(w) = worker.take() {
                session.retire(w, arrival);
            }
        }
        let mut w = match worker.take() {
            Some(w) => w,
            None => session.provision(arrival),
        };
        session.serve(&mut w, i, arrival);
        worker = Some(w);
    }
    if let Some(w) = worker.take() {
        session.retire(w, last_arrival);
    }
    session.finish()
}

/// Replays a production-scale arrival stream (e.g.
/// [`pronghorn_traces::ArrivalStream`]) with idle-timeout eviction,
/// keeping memory O(workers): arrivals feed the kernel through a bounded
/// lookahead window and all measurements are O(1) running aggregates.
///
/// Arrivals must be non-decreasing (arrival streams are); an out-of-order
/// arrival is clamped to the kernel clock rather than rewinding time.
///
/// # Examples
///
/// ```
/// use pronghorn_core::PolicyKind;
/// use pronghorn_platform::{run_production, RunConfig};
/// use pronghorn_sim::RngFactory;
/// use pronghorn_traces::TraceSpec;
/// use pronghorn_workloads::by_name;
///
/// let workload = by_name("Hash").unwrap();
/// let cfg = RunConfig::paper(PolicyKind::RequestCentric, 4, 42);
/// let spec = TraceSpec::production(0.001, 0.9); // 3.6 s of p90 traffic
/// let arrivals = spec.stream(RngFactory::new(cfg.seed).stream("production"));
/// let stats = run_production(&workload, &cfg, arrivals);
/// assert!(stats.invocations > 0);
/// // Every worker was provisioned exactly once, cold or from a snapshot.
/// assert!(stats.cold_starts + stats.restores >= 1);
/// assert!(stats.p99_latency_us >= stats.p50_latency_us);
/// ```
pub fn run_production<I>(workload: &dyn Workload, cfg: &RunConfig, arrivals: I) -> ProductionStats
where
    I: IntoIterator<Item = SimTime>,
{
    let mut session = Session::streaming(workload, *cfg);
    let mut kernel: Kernel<u64> = Kernel::new(cfg.kernel);
    let mut arrivals = arrivals.into_iter();
    let mut next_index: u64 = 0;
    let mut peak_pending = 0usize;
    let mut worker: Option<Worker> = None;
    let mut end_time = SimTime::ZERO;
    let mut last_now = SimTime::ZERO;
    // Whether an IDLE_CHECK_EVENT is already pending: the probe chain is
    // kept at most one deep so sentinels never accumulate in the kernel.
    let mut idle_check_pending = false;
    let probe_gap = cfg.idle_timeout + SimDuration::from_micros(1);
    loop {
        while kernel.len() < PRODUCTION_LOOKAHEAD {
            let Some(at) = arrivals.next() else { break };
            kernel.schedule(at, next_index);
            next_index += 1;
        }
        peak_pending = peak_pending.max(kernel.len());
        let Some((now, event)) = kernel.pop() else {
            break;
        };
        last_now = now;
        match event {
            PRE_RESTORE_EVENT => {
                if worker.is_none() {
                    let w = session.pre_restore(now);
                    kernel.schedule(w.pre_warm_expires, PRE_WARM_EXPIRY_EVENT);
                    worker = Some(w);
                } else {
                    session.cancel_pre_restore();
                }
                continue;
            }
            PRE_WARM_EXPIRY_EVENT => {
                let expired = worker
                    .as_ref()
                    .is_some_and(|w| w.pre_warmed_since.is_some() && now >= w.pre_warm_expires);
                if expired {
                    if let Some(w) = worker.take() {
                        session.retire(w, now);
                    }
                    if let Some(at) = session.plan_pre_restore(now) {
                        kernel.schedule(at, PRE_RESTORE_EVENT);
                    }
                }
                continue;
            }
            IDLE_CHECK_EVENT => {
                idle_check_pending = false;
                // A pre-warmed worker is waiting on its own expiry event,
                // not the idle clock.
                let state = worker
                    .as_ref()
                    .filter(|w| w.pre_warmed_since.is_none())
                    .map(|w| w.last_active);
                if let Some(last_active) = state {
                    if now.saturating_since(last_active) > cfg.idle_timeout {
                        if let Some(w) = worker.take() {
                            session.retire(w, now);
                        }
                        if let Some(at) = session.plan_pre_restore(now) {
                            kernel.schedule(at, PRE_RESTORE_EVENT);
                        }
                    } else {
                        kernel.schedule(last_active + probe_gap, IDLE_CHECK_EVENT);
                        idle_check_pending = true;
                    }
                }
                continue;
            }
            _ => {}
        }
        let index = event;
        // Arrival-time idle eviction (the reactive path's only probe —
        // and still the one that fires when a pre-restored worker's slot
        // is taken over by real traffic before any sentinel looks).
        // Pre-warmed workers are exempt: they exist precisely to absorb
        // the arrival that ends a long gap.
        let idle = worker.as_ref().is_some_and(|w| {
            w.pre_warmed_since.is_none() && now.saturating_since(w.last_active) > cfg.idle_timeout
        });
        if idle {
            if let Some(w) = worker.take() {
                session.retire(w, now);
            }
        }
        let mut w = match worker.take() {
            Some(w) => w,
            None => session.provision(now),
        };
        session.serve(&mut w, index, now);
        worker = Some(w);
        end_time = now;
        // With provisioning on, arm the between-arrivals idle probe so
        // the slot can go cold — and be predictively re-warmed — during
        // a gap instead of only at the next arrival.
        if session.provision_enabled() && !idle_check_pending {
            kernel.schedule(now + probe_gap, IDLE_CHECK_EVENT);
            idle_check_pending = true;
        }
    }
    if let Some(w) = worker.take() {
        session.retire(w, last_now);
    }
    session.finish_production(end_time, peak_pending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pronghorn_core::PolicyKind;
    use pronghorn_sim::SimDuration;
    use pronghorn_traces::TraceSpec;
    use pronghorn_workloads::{by_name, InputVariance};

    fn cfg(policy: PolicyKind, rate: u32) -> RunConfig {
        RunConfig::paper(policy, rate, 42)
            .with_invocations(120)
            .with_variance(InputVariance::none())
    }

    #[test]
    fn cold_policy_never_checkpoints() {
        let bench = by_name("DFS").unwrap();
        let r = run_closed_loop(&bench, &cfg(PolicyKind::Cold, 1));
        assert_eq!(r.latencies_us.len(), 120);
        assert!(r.checkpoint_ms.is_empty());
        assert_eq!(r.cold_starts(), 120);
        assert_eq!(r.restores(), 0);
    }

    #[test]
    fn after_first_takes_exactly_one_checkpoint() {
        let bench = by_name("DFS").unwrap();
        let r = run_closed_loop(&bench, &cfg(PolicyKind::AfterFirst, 1));
        assert_eq!(r.checkpoint_ms.len(), 1);
        assert_eq!(r.cold_starts(), 1);
        assert_eq!(r.restores(), 119);
        // Every restore resumes at request 1.
        assert!(r
            .provisions
            .iter()
            .skip(1)
            .all(|p| *p == ProvisionKind::Restored(1)));
    }

    #[test]
    fn after_first_beats_cold_start_at_rate_one() {
        let bench = by_name("DFS").unwrap();
        let cold = run_closed_loop(&bench, &cfg(PolicyKind::Cold, 1));
        let after = run_closed_loop(&bench, &cfg(PolicyKind::AfterFirst, 1));
        // Cold pays lazy init on every request; after-1st skips it.
        assert!(
            after.median_us() < cold.median_us() * 0.8,
            "after-1st {} vs cold {}",
            after.median_us(),
            cold.median_us()
        );
    }

    #[test]
    fn request_centric_checkpoints_and_pools_snapshots() {
        let bench = by_name("DFS").unwrap();
        let r = run_closed_loop(&bench, &cfg(PolicyKind::RequestCentric, 1));
        assert!(
            r.checkpoint_ms.len() > 5,
            "{} checkpoints",
            r.checkpoint_ms.len()
        );
        assert!(r.restores() > 50);
        // Pool capacity (C = 12) bounds live blobs.
        assert!(r.store_stats.objects <= 12);
    }

    #[test]
    fn eviction_rate_controls_worker_count() {
        let bench = by_name("DFS").unwrap();
        let r1 = run_closed_loop(&bench, &cfg(PolicyKind::Cold, 1));
        let r4 = run_closed_loop(&bench, &cfg(PolicyKind::Cold, 4));
        let r20 = run_closed_loop(&bench, &cfg(PolicyKind::Cold, 20));
        assert_eq!(r1.provisions.len(), 120);
        assert_eq!(r4.provisions.len(), 30);
        assert_eq!(r20.provisions.len(), 6);
    }

    #[test]
    fn runs_are_reproducible_by_seed() {
        let bench = by_name("Hash").unwrap();
        let a = run_closed_loop(&bench, &cfg(PolicyKind::RequestCentric, 4));
        let b = run_closed_loop(&bench, &cfg(PolicyKind::RequestCentric, 4));
        assert_eq!(a.latencies_us, b.latencies_us);
        assert_eq!(a.provisions, b.provisions);
    }

    #[test]
    fn different_seeds_differ() {
        let bench = by_name("Hash").unwrap();
        let a = run_closed_loop(&bench, &cfg(PolicyKind::RequestCentric, 4));
        let mut other = cfg(PolicyKind::RequestCentric, 4);
        other.seed = 43;
        let b = run_closed_loop(&bench, &other);
        assert_ne!(a.latencies_us, b.latencies_us);
    }

    #[test]
    fn trace_run_serves_every_arrival() {
        let bench = by_name("MST").unwrap();
        let factory = RngFactory::new(5);
        let trace = TraceSpec::percentile(0.75).generate(&mut factory.stream("t"));
        let r = run_trace(&bench, &cfg(PolicyKind::AfterFirst, 4), &trace);
        assert_eq!(r.latencies_us.len(), trace.len());
    }

    #[test]
    fn trace_idle_timeout_evicts_workers() {
        use pronghorn_sim::SimTime;
        let bench = by_name("MST").unwrap();
        // Two bursts separated by more than the idle timeout.
        let arrivals = vec![
            SimTime::from_micros(0),
            SimTime::from_micros(1_000_000),
            SimTime::ZERO + SimDuration::from_secs(1_800),
        ];
        let trace = Trace::new(arrivals, SimDuration::from_secs(3_600));
        let r = run_trace(&bench, &cfg(PolicyKind::Cold, 4), &trace);
        // First burst shares a worker; the third arrival needs a new one.
        assert_eq!(r.provisions.len(), 2);
    }

    #[test]
    fn lazy_restore_faults_on_the_critical_path() {
        let bench = by_name("DFS").unwrap();
        let r = run_closed_loop(
            &bench,
            &cfg(PolicyKind::AfterFirst, 4).with_restore(RestoreStrategy::Lazy),
        );
        assert_eq!(r.restore_strategy, RestoreStrategy::Lazy);
        assert_eq!(r.restore_infos.len(), r.restores());
        assert!(r.total_faults() > 0, "lazy restores must demand-fault");
        assert_eq!(r.prefetched_pages(), 0);
        // Every fault moved bytes from the page bucket.
        assert!(r.restore_bytes() > 0);
    }

    #[test]
    fn record_prefetch_records_once_then_prefetches() {
        let bench = by_name("DFS").unwrap();
        let r = run_closed_loop(
            &bench,
            &cfg(PolicyKind::AfterFirst, 4).with_restore(RestoreStrategy::RecordPrefetch),
        );
        assert!(r.prefetched_pages() > 0, "later restores must prefetch");
        // The recording restore faults its working set in; prefetched
        // restores fault only the cold tail, so faults stay well below
        // what the all-lazy run pays.
        let lazy = run_closed_loop(
            &bench,
            &cfg(PolicyKind::AfterFirst, 4).with_restore(RestoreStrategy::Lazy),
        );
        assert!(
            r.total_faults() < lazy.total_faults() / 2,
            "record-prefetch {} faults vs lazy {}",
            r.total_faults(),
            lazy.total_faults()
        );
    }

    #[test]
    fn record_prefetch_beats_lazy_and_eager_restore_latency() {
        let bench = by_name("DFS").unwrap();
        let eager = run_closed_loop(&bench, &cfg(PolicyKind::AfterFirst, 4));
        let lazy = run_closed_loop(
            &bench,
            &cfg(PolicyKind::AfterFirst, 4).with_restore(RestoreStrategy::Lazy),
        );
        let rp = run_closed_loop(
            &bench,
            &cfg(PolicyKind::AfterFirst, 4).with_restore(RestoreStrategy::RecordPrefetch),
        );
        assert!(
            rp.median_restore_us() < lazy.median_restore_us(),
            "record-prefetch {} vs lazy {}",
            rp.median_restore_us(),
            lazy.median_restore_us()
        );
        assert!(
            rp.median_restore_us() <= eager.median_restore_us(),
            "record-prefetch {} vs eager {}",
            rp.median_restore_us(),
            eager.median_restore_us()
        );
        // Compute-bound benchmark: the working set is a fraction of the
        // image, so record-prefetch also moves fewer bytes than eager's
        // full-payload download.
        assert!(
            rp.restore_bytes() < eager.restore_bytes(),
            "record-prefetch {} bytes vs eager {}",
            rp.restore_bytes(),
            eager.restore_bytes()
        );
    }

    #[test]
    fn lazy_strategies_are_reproducible_by_seed() {
        let bench = by_name("Hash").unwrap();
        for strategy in [RestoreStrategy::Lazy, RestoreStrategy::RecordPrefetch] {
            let c = cfg(PolicyKind::RequestCentric, 4).with_restore(strategy);
            let a = run_closed_loop(&bench, &c);
            let b = run_closed_loop(&bench, &c);
            assert_eq!(a.latencies_us, b.latencies_us, "{strategy}");
            assert_eq!(a.restore_infos, b.restore_infos, "{strategy}");
            assert_eq!(a.provisions, b.provisions, "{strategy}");
        }
    }

    #[test]
    fn eager_runs_never_touch_page_or_manifest_buckets() {
        let bench = by_name("DFS").unwrap();
        let r = run_closed_loop(&bench, &cfg(PolicyKind::RequestCentric, 1));
        assert_eq!(r.restore_strategy, RestoreStrategy::Eager);
        assert_eq!(r.total_faults(), 0);
        assert_eq!(r.prefetched_pages(), 0);
        assert_eq!(r.restore_infos.len(), r.restores());
        // Eager restore cost comes straight from the engine sample; the
        // info mirrors the restore_ms accumulator exactly.
        let from_infos: Vec<f64> = r
            .restore_infos
            .iter()
            .map(|i| i.restore_us / 1_000.0)
            .collect();
        let mut sorted_ms = r.restore_ms.clone();
        let mut sorted_infos = from_infos.clone();
        sorted_ms.sort_by(f64::total_cmp);
        sorted_infos.sort_by(f64::total_cmp);
        assert_eq!(sorted_ms, sorted_infos);
    }

    #[test]
    fn delta_checkpointing_never_shifts_latencies() {
        use pronghorn_checkpoint::DeltaPolicy;
        let bench = by_name("DFS").unwrap();
        let full = run_closed_loop(&bench, &cfg(PolicyKind::RequestCentric, 1));
        let delta = run_closed_loop(
            &bench,
            &cfg(PolicyKind::RequestCentric, 1).with_delta(DeltaPolicy::Enabled { max_depth: 4 }),
        );
        // Both engine arms draw identical randomness and checkpoint
        // downtime stays off the critical path, so client-visible behavior
        // is byte-identical with delta on or off.
        assert_eq!(full.latencies_us, delta.latencies_us);
        assert_eq!(full.provisions, delta.provisions);
        assert_eq!(full.snapshot_requests, delta.snapshot_requests);
        // The delta run actually cut deltas and consolidated chains...
        assert!(delta.chain.deltas > 0, "no deltas cut: {:?}", delta.chain);
        assert!(delta.chain.roots > 0);
        assert!(
            delta.chain.max_depth <= 4,
            "chain exceeded K: {:?}",
            delta.chain
        );
        assert_eq!(full.chain, pronghorn_store::ChainStats::default());
        // ...and paid for it: fewer nominal bytes uploaded, cheaper
        // checkpoint downtime (dirty working set vs the full image).
        assert!(
            delta.overheads.nominal_bytes_uploaded < full.overheads.nominal_bytes_uploaded,
            "delta uploaded {} vs full {}",
            delta.overheads.nominal_bytes_uploaded,
            full.overheads.nominal_bytes_uploaded
        );
        assert!(delta.checkpoint_ms.iter().sum::<f64>() < full.checkpoint_ms.iter().sum::<f64>());
    }

    #[test]
    fn delta_runs_are_reproducible_by_seed() {
        use pronghorn_checkpoint::DeltaPolicy;
        let bench = by_name("Hash").unwrap();
        let c =
            cfg(PolicyKind::RequestCentric, 4).with_delta(DeltaPolicy::Enabled { max_depth: 4 });
        let a = run_closed_loop(&bench, &c);
        let b = run_closed_loop(&bench, &c);
        assert_eq!(a.latencies_us, b.latencies_us);
        assert_eq!(a.provisions, b.provisions);
        assert_eq!(a.chain, b.chain);
        assert_eq!(
            a.overheads.nominal_bytes_uploaded,
            b.overheads.nominal_bytes_uploaded
        );
    }

    #[test]
    fn uploader_is_worse_under_request_centric() {
        // The paper's one regression: IO-bound Uploader at eviction rate 1.
        let bench = by_name("Uploader").unwrap();
        let mut c_after = RunConfig::paper(PolicyKind::AfterFirst, 1, 9).with_invocations(300);
        let mut c_rc = RunConfig::paper(PolicyKind::RequestCentric, 1, 9).with_invocations(300);
        c_after.variance = InputVariance::none();
        c_rc.variance = InputVariance::none();
        let after = run_closed_loop(&bench, &c_after);
        let rc = run_closed_loop(&bench, &c_rc);
        assert!(
            rc.median_us() > after.median_us(),
            "request-centric {} should exceed after-1st {}",
            rc.median_us(),
            after.median_us()
        );
    }

    #[test]
    fn predictive_provisioning_fixes_the_uploader_regression() {
        use pronghorn_forecast::{ForecasterKind, ProvisionPolicy};
        // Same protocol as `uploader_is_worse_under_request_centric`:
        // at eviction rate 1 every restore pays the stale-IO penalty on
        // its single request. A predicted pre-restore lands ~60 s before
        // the next arrival, and that lead time freshens the IO state
        // (prewarm credit), erasing the penalty.
        let bench = by_name("Uploader").unwrap();
        let mut reactive = RunConfig::paper(PolicyKind::RequestCentric, 1, 9).with_invocations(300);
        reactive.variance = InputVariance::none();
        let predictive = reactive.with_provision(ProvisionPolicy::predictive(ForecasterKind::Ewma));
        let r = run_closed_loop(&bench, &reactive);
        let p = run_closed_loop(&bench, &predictive);
        assert!(
            p.median_us() < r.median_us(),
            "predictive {} should beat reactive {}",
            p.median_us(),
            r.median_us()
        );
        assert!(p.provisioning.pre_restores_issued > 0);
        assert!(p.provisioning.pre_restores_used > 0);
        assert!(p.provisioning.keepalive_byte_s > 0.0);
        // Reactive runs account nothing.
        assert_eq!(r.provisioning.pre_restores_issued, 0);
        assert_eq!(r.provisioning.keepalive_byte_s, 0.0);
    }

    #[test]
    fn predictive_runs_are_byte_identical_under_both_kernels() {
        use pronghorn_forecast::{ForecasterKind, ProvisionPolicy};
        use pronghorn_sim::KernelKind;
        let bench = by_name("Uploader").unwrap();
        for kind in ForecasterKind::ALL {
            let heap_cfg = cfg(PolicyKind::RequestCentric, 4)
                .with_provision(ProvisionPolicy::predictive(kind));
            let wheel_cfg = heap_cfg.with_kernel(KernelKind::TimerWheel);
            let a = run_closed_loop(&bench, &heap_cfg);
            let b = run_closed_loop(&bench, &wheel_cfg);
            assert_eq!(a.latencies_us, b.latencies_us, "{}", kind.label());
            assert_eq!(a.provisions, b.provisions, "{}", kind.label());
            assert_eq!(a.provisioning, b.provisioning, "{}", kind.label());
        }
    }

    #[test]
    fn pre_restores_resolve_exactly_once() {
        use pronghorn_forecast::{ForecasterKind, ProvisionPolicy};
        // Conservation: every issued pre-restore is eventually used or
        // wasted, never both, never dropped.
        let bench = by_name("Uploader").unwrap();
        let c = cfg(PolicyKind::RequestCentric, 1)
            .with_provision(ProvisionPolicy::predictive(ForecasterKind::SlidingWindow));
        let r = run_closed_loop(&bench, &c);
        let s = r.provisioning;
        assert!(s.pre_restores_issued > 0);
        assert_eq!(
            s.pre_restores_issued,
            s.pre_restores_used + s.pre_restores_wasted,
            "issued {} != used {} + wasted {}",
            s.pre_restores_issued,
            s.pre_restores_used,
            s.pre_restores_wasted
        );
    }

    #[test]
    fn timer_wheel_is_byte_identical_on_every_runner() {
        use pronghorn_sim::KernelKind;
        let bench = by_name("DFS").unwrap();
        let heap_cfg = cfg(PolicyKind::RequestCentric, 4);
        let wheel_cfg = heap_cfg.with_kernel(KernelKind::TimerWheel);

        let a = run_closed_loop(&bench, &heap_cfg);
        let b = run_closed_loop(&bench, &wheel_cfg);
        assert_eq!(a.latencies_us, b.latencies_us);
        assert_eq!(a.provisions, b.provisions);
        assert_eq!(a.checkpoint_ms, b.checkpoint_ms);
        assert_eq!(a.snapshot_requests, b.snapshot_requests);

        let factory = RngFactory::new(7);
        let trace = TraceSpec::percentile(0.75).generate(&mut factory.stream("t"));
        let a = run_trace_with_history(&bench, &heap_cfg, &trace, 40);
        let b = run_trace_with_history(&bench, &wheel_cfg, &trace, 40);
        assert_eq!(a.latencies_us, b.latencies_us);
        assert_eq!(a.provisions, b.provisions);

        let a = crate::run_partitioned(&bench, &heap_cfg, 2);
        let b = crate::run_partitioned(&bench, &wheel_cfg, 2);
        assert_eq!(a.latencies_us, b.latencies_us);
        assert_eq!(a.provisions, b.provisions);
    }

    #[test]
    fn production_replay_matches_under_both_kernels() {
        use pronghorn_sim::KernelKind;
        let bench = by_name("Hash").unwrap();
        let heap_cfg = cfg(PolicyKind::RequestCentric, 4);
        let wheel_cfg = heap_cfg.with_kernel(KernelKind::TimerWheel);
        let spec = TraceSpec::production(0.002, 0.9);
        let factory = RngFactory::new(heap_cfg.seed);
        let a = run_production(&bench, &heap_cfg, spec.stream(factory.stream("production")));
        let b = run_production(
            &bench,
            &wheel_cfg,
            spec.stream(factory.stream("production")),
        );
        assert!(a.invocations > 0, "empty production stream");
        assert_eq!(a, b);
    }

    #[test]
    fn production_aggregates_match_the_vec_accumulating_trace_runner() {
        // The same arrivals through run_trace (per-invocation Vecs) and
        // run_production (streaming aggregates) must agree exactly on
        // counts and means, and within bucket resolution on quantiles.
        let bench = by_name("Hash").unwrap();
        let c = cfg(PolicyKind::RequestCentric, 4);
        let factory = RngFactory::new(11);
        let trace = TraceSpec::percentile(0.9).generate(&mut factory.stream("t"));
        let vec_run = run_trace(&bench, &c, &trace);
        let stream_run = run_production(&bench, &c, trace.arrivals().iter().copied());
        assert_eq!(stream_run.invocations, vec_run.latencies_us.len() as u64);
        assert_eq!(stream_run.cold_starts, vec_run.cold_starts() as u64);
        assert_eq!(stream_run.restores, vec_run.restores() as u64);
        assert_eq!(stream_run.checkpoints, vec_run.checkpoint_ms.len() as u64);
        let vec_mean = vec_run.latencies_us.iter().sum::<f64>() / vec_run.latencies_us.len() as f64;
        assert!((stream_run.mean_latency_us - vec_mean).abs() <= vec_mean * 1e-9);
        let vec_median = vec_run.median_us();
        assert!(
            (stream_run.p50_latency_us - vec_median).abs() <= vec_median * 0.02,
            "p50 {} vs exact median {}",
            stream_run.p50_latency_us,
            vec_median
        );
        assert!((stream_run.provision_us_total - vec_run.provision_us).abs() < 1e-6);
    }
}

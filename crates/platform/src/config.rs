//! Run configuration for one benchmark × policy × eviction-rate cell.

use pronghorn_checkpoint::DeltaPolicy;
use pronghorn_cluster::ClusterSpec;
use pronghorn_core::{PolicyConfig, PolicyKind};
use pronghorn_forecast::ProvisionPolicy;
use pronghorn_jit::RuntimeKind;
use pronghorn_restore::RestoreStrategy;
use pronghorn_sim::{KernelKind, SimDuration};
use pronghorn_store::StoragePolicy;
use pronghorn_workloads::InputVariance;

/// Configuration of one experiment cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Master seed for every RNG stream of the run.
    pub seed: u64,
    /// Total invocations (paper: 500 per cell).
    pub invocations: u32,
    /// Worker eviction rate: requests served per worker before eviction
    /// (paper: 1, 4, 20 ≈ a request every hour / 5 min / 1 min).
    pub eviction_rate: u32,
    /// Orchestration policy under test.
    pub policy: PolicyKind,
    /// Input-size noise (§5.1's Gaussian perturbation).
    pub variance: InputVariance,
    /// Virtual gap between consecutive request arrivals in closed-loop
    /// mode; long enough that provisioning and checkpointing stay off the
    /// critical path.
    pub request_gap: SimDuration,
    /// Idle timeout for trace-driven eviction (paper: ~10 minutes).
    pub idle_timeout: SimDuration,
    /// Override for the request-centric policy parameters; `None` derives
    /// the paper's defaults from the runtime kind and eviction rate.
    pub policy_config: Option<PolicyConfig>,
    /// The provider's estimate of the worker lifetime `β`, when it differs
    /// from the true eviction rate — §6's "Lifetime estimation" discussion
    /// (an underestimate checkpoints too early; an overestimate plans
    /// checkpoints that are never reached). `None` = accurate estimate.
    pub beta_estimate: Option<u32>,
    /// Invocation count after which the provider halts further
    /// checkpointing (§5.3: "the cloud provider can stop further
    /// checkpointing after W + 100 invocations"). `None` reproduces the
    /// paper's evaluation, which never stops.
    pub stop_checkpointing_after: Option<u32>,
    /// How restores materialize snapshot memory: eager (the paper's
    /// behaviour, bit-identical to runs predating this knob), lazy
    /// map-on-fault, or REAP-style record & prefetch.
    pub restore: RestoreStrategy,
    /// Whether checkpoints of restored workers persist as page deltas
    /// against the snapshot they were restored from. Disabled by default:
    /// the full-snapshot path stays bit-identical to runs predating this
    /// knob (pinned by `tests/full_invariance.rs`).
    pub delta: DeltaPolicy,
    /// Which future-event-list implementation drives the run. Both kernels
    /// pop in identical `(at, seq)` order, so every result is byte-identical
    /// under either; the timer wheel is O(1) per event and wins at
    /// production-trace scale (see `results/BENCH_kernel.json`).
    pub kernel: KernelKind,
    /// Proactive provisioning policy: arrival forecasting driving
    /// pre-restores ahead of predicted bursts, running alongside the
    /// reactive checkpoint `policy`. [`ProvisionPolicy::Disabled`] (the
    /// default) schedules nothing and draws nothing — runs are
    /// byte-identical to those predating this knob (pinned by
    /// `tests/full_invariance.rs`).
    pub provision: ProvisionPolicy,
    /// Cluster shape for [`crate::run_cluster`]: node count, per-node
    /// worker capacity, gateway routing and snapshot placement. The
    /// default [`ClusterSpec::single_node`] keeps every single-node
    /// runner's behaviour (and the `nodes = 1` cluster run is pinned
    /// bit-identical to [`crate::run_closed_loop`]).
    pub cluster: ClusterSpec,
    /// Tiered snapshot storage: local-SSD cache, modeled wire
    /// compression, and delta-aware composed-chain prefetch.
    /// [`StoragePolicy::disabled`] (the default) builds no tier and keeps
    /// the flat-store path byte-identical to runs predating this knob
    /// (pinned by `tests/full_invariance.rs`).
    pub storage: StoragePolicy,
}

impl RunConfig {
    /// The paper's §5.1 configuration for a given policy and eviction rate.
    pub fn paper(policy: PolicyKind, eviction_rate: u32, seed: u64) -> Self {
        RunConfig {
            seed,
            invocations: 500,
            eviction_rate: eviction_rate.max(1),
            policy,
            variance: InputVariance::paper(),
            request_gap: SimDuration::from_secs(60),
            idle_timeout: SimDuration::from_secs(600),
            policy_config: None,
            beta_estimate: None,
            stop_checkpointing_after: None,
            restore: RestoreStrategy::Eager,
            delta: DeltaPolicy::Disabled,
            kernel: KernelKind::BinaryHeap,
            provision: ProvisionPolicy::Disabled,
            cluster: ClusterSpec::single_node(),
            storage: StoragePolicy::disabled(),
        }
    }

    /// Resolves the request-centric policy configuration: explicit
    /// override, or paper defaults for the runtime (`W` = 100 PyPy / 200
    /// JVM) with `β` equal to the eviction rate.
    pub fn resolve_policy_config(&self, kind: RuntimeKind) -> PolicyConfig {
        let beta = self.beta_estimate.unwrap_or(self.eviction_rate);
        match self.policy_config {
            Some(config) => config.with_beta(beta),
            None => match kind {
                RuntimeKind::PyPy => PolicyConfig::paper_pypy().with_beta(beta),
                RuntimeKind::Jvm => PolicyConfig::paper_jvm().with_beta(beta),
            },
        }
    }

    /// Sets the number of invocations.
    pub fn with_invocations(mut self, invocations: u32) -> Self {
        self.invocations = invocations;
        self
    }

    /// Sets the input variance.
    pub fn with_variance(mut self, variance: InputVariance) -> Self {
        self.variance = variance;
        self
    }

    /// Sets an explicit policy configuration.
    pub fn with_policy_config(mut self, config: PolicyConfig) -> Self {
        self.policy_config = Some(config);
        self
    }

    /// Halts checkpointing after `invocations` requests (the provider's
    /// cost bound; the paper suggests `W + 100`).
    pub fn with_checkpoint_stop(mut self, invocations: u32) -> Self {
        self.stop_checkpointing_after = Some(invocations);
        self
    }

    /// Sets a (possibly wrong) provider estimate of the worker lifetime.
    pub fn with_beta_estimate(mut self, beta: u32) -> Self {
        self.beta_estimate = Some(beta.max(1));
        self
    }

    /// Sets the restore strategy.
    pub fn with_restore(mut self, restore: RestoreStrategy) -> Self {
        self.restore = restore;
        self
    }

    /// Sets the delta checkpointing policy.
    pub fn with_delta(mut self, delta: DeltaPolicy) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the simulation kernel.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the cluster shape for [`crate::run_cluster`].
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Sets the proactive provisioning policy.
    pub fn with_provision(mut self, provision: ProvisionPolicy) -> Self {
        self.provision = provision;
        self
    }

    /// Sets the tiered snapshot storage policy.
    pub fn with_storage(mut self, storage: StoragePolicy) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the keep-alive window the production runner evicts idle
    /// workers after.
    pub fn with_idle_timeout(mut self, timeout: SimDuration) -> Self {
        self.idle_timeout = timeout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let c = RunConfig::paper(PolicyKind::RequestCentric, 4, 7);
        assert_eq!(c.invocations, 500);
        assert_eq!(c.eviction_rate, 4);
        assert_eq!(c.variance, InputVariance::paper());
        assert_eq!(c.restore, RestoreStrategy::Eager);
        assert_eq!(c.delta, DeltaPolicy::Disabled);
        assert_eq!(c.kernel, KernelKind::BinaryHeap);
        assert_eq!(c.provision, ProvisionPolicy::Disabled);
        assert_eq!(c.cluster, ClusterSpec::single_node());
        let predictive = c.with_provision(ProvisionPolicy::predictive(
            pronghorn_forecast::ForecasterKind::Ewma,
        ));
        assert!(predictive.provision.enabled());
        let clustered = c.with_cluster(ClusterSpec::new(4).with_capacity(2));
        assert_eq!(clustered.cluster.nodes, 4);
        assert_eq!(clustered.cluster.capacity, 2);
        assert_eq!(
            c.with_kernel(KernelKind::TimerWheel).kernel,
            KernelKind::TimerWheel
        );
        let lazy = c.with_restore(RestoreStrategy::Lazy);
        assert_eq!(lazy.restore, RestoreStrategy::Lazy);
        let delta = c.with_delta(DeltaPolicy::Enabled { max_depth: 4 });
        assert_eq!(delta.delta, DeltaPolicy::Enabled { max_depth: 4 });
        assert_eq!(c.storage, StoragePolicy::disabled());
        assert!(!c.storage.enabled());
        let tiered = c.with_storage(StoragePolicy::disabled().with_cache().with_compression());
        assert!(tiered.storage.enabled());
        assert!(tiered.storage.cache.is_some());
    }

    #[test]
    fn eviction_rate_is_positive() {
        let c = RunConfig::paper(PolicyKind::Cold, 0, 7);
        assert_eq!(c.eviction_rate, 1);
    }

    #[test]
    fn policy_config_derives_w_from_runtime() {
        let c = RunConfig::paper(PolicyKind::RequestCentric, 20, 7);
        assert_eq!(c.resolve_policy_config(RuntimeKind::PyPy).w, 100);
        assert_eq!(c.resolve_policy_config(RuntimeKind::Jvm).w, 200);
        assert_eq!(c.resolve_policy_config(RuntimeKind::Jvm).beta, 20);
    }

    #[test]
    fn explicit_policy_config_wins_but_beta_tracks_eviction() {
        let custom = PolicyConfig::paper_pypy().with_w(50).with_capacity(3);
        let c = RunConfig::paper(PolicyKind::RequestCentric, 4, 7).with_policy_config(custom);
        let resolved = c.resolve_policy_config(RuntimeKind::Jvm);
        assert_eq!(resolved.w, 50);
        assert_eq!(resolved.capacity, 3);
        assert_eq!(resolved.beta, 4);
    }
}

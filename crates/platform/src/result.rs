//! Results of one experiment run.

use pronghorn_checkpoint::CodecStats;
use pronghorn_core::{OverheadTotals, PolicyKind};
use pronghorn_forecast::ProvisionStats;
use pronghorn_metrics::{convergence_request, Cdf, ConvergenceCriteria, Quantiles};
use pronghorn_restore::{RestoreInfo, RestoreStrategy};
use pronghorn_store::{ChainStats, StorageStats, StoreStats};

/// How a worker was provisioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvisionKind {
    /// Fresh runtime boot.
    Cold,
    /// Restored from a snapshot taken at the contained request number.
    Restored(u32),
}

/// Everything measured during one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub workload: String,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Eviction rate (requests per worker).
    pub eviction_rate: u32,
    /// End-to-end latency of every request, µs, in arrival order.
    pub latencies_us: Vec<f64>,
    /// Orchestrator overhead decomposition (Figure 7).
    pub overheads: OverheadTotals,
    /// Object-store accounting at the end of the run.
    pub store_stats: StoreStats,
    /// Workers provisioned, in order.
    pub provisions: Vec<ProvisionKind>,
    /// Checkpoint engine downtimes, ms (Table 4).
    pub checkpoint_ms: Vec<f64>,
    /// Restore costs, ms (Table 4).
    pub restore_ms: Vec<f64>,
    /// Nominal size of every snapshot taken, MB (Table 4).
    pub snapshot_mb: Vec<f64>,
    /// Request number of every snapshot taken, in order.
    pub snapshot_requests: Vec<u32>,
    /// Total provisioning time spent off the critical path, µs.
    pub provision_us: f64,
    /// Encode-path performance counters (real wall-clock, observational
    /// only — never feeds back into simulated behavior).
    pub codec: CodecStats,
    /// Restore strategy the run executed under.
    pub restore_strategy: RestoreStrategy,
    /// Per-restore fault/prefetch stats, one entry per restored worker
    /// (cold boots contribute none), in retirement order.
    pub restore_infos: Vec<RestoreInfo>,
    /// Delta-chain accounting (roots, deltas, consolidations, composed
    /// restores); all-zero when delta checkpointing is disabled.
    pub chain: ChainStats,
    /// Predictive pre-restore accounting; all-zero when provisioning is
    /// disabled.
    pub provisioning: ProvisionStats,
    /// Storage-hierarchy accounting (SSD cache, wire compression,
    /// composed prefetch); all-zero when tiered storage is disabled.
    pub storage: StorageStats,
}

impl RunResult {
    /// Median end-to-end latency, µs.
    pub fn median_us(&self) -> f64 {
        Quantiles::new(self.latencies_us.clone())
            .map(|q| q.median())
            .unwrap_or(f64::NAN)
    }

    /// Arbitrary percentile of the latency distribution, µs.
    pub fn percentile_us(&self, p: f64) -> f64 {
        Quantiles::new(self.latencies_us.clone())
            .map(|q| q.percentile(p))
            .unwrap_or(f64::NAN)
    }

    /// Empirical CDF of the latencies (the Figure 4/5/6 curves).
    pub fn cdf(&self) -> Option<Cdf> {
        Cdf::new(self.latencies_us.clone())
    }

    /// Table 4's convergence request: first window-20 whose median is
    /// within 2% of the final value.
    pub fn convergence_request(&self) -> Option<usize> {
        convergence_request(&self.latencies_us, ConvergenceCriteria::default())
    }

    /// Number of cold starts.
    pub fn cold_starts(&self) -> usize {
        self.provisions
            .iter()
            .filter(|p| matches!(p, ProvisionKind::Cold))
            .count()
    }

    /// Number of snapshot restores.
    pub fn restores(&self) -> usize {
        self.provisions.len() - self.cold_starts()
    }

    /// Mean snapshot size, MB (0 when no snapshot was taken).
    pub fn mean_snapshot_mb(&self) -> f64 {
        if self.snapshot_mb.is_empty() {
            0.0
        } else {
            self.snapshot_mb.iter().sum::<f64>() / self.snapshot_mb.len() as f64
        }
    }

    /// Median end-to-end restore cost across restored workers, µs
    /// (up-front restore plus all fault service); NaN with no restores.
    pub fn median_restore_us(&self) -> f64 {
        Quantiles::new(
            self.restore_infos
                .iter()
                .map(RestoreInfo::total_restore_us)
                .collect(),
        )
        .map(|q| q.median())
        .unwrap_or(f64::NAN)
    }

    /// Total bytes moved from the store for restores (payloads, prefetch
    /// batches, and demand-fetched pages).
    pub fn restore_bytes(&self) -> u64 {
        self.restore_infos.iter().map(|i| i.bytes_transferred).sum()
    }

    /// Total first-touch page faults served across all restored workers.
    pub fn total_faults(&self) -> u64 {
        self.restore_infos.iter().map(|i| u64::from(i.faults)).sum()
    }

    /// Total pages brought in by batched manifest prefetches.
    pub fn prefetched_pages(&self) -> u64 {
        self.restore_infos
            .iter()
            .map(|i| u64::from(i.prefetched_pages))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(latencies: Vec<f64>) -> RunResult {
        RunResult {
            workload: "t".into(),
            policy: PolicyKind::Cold,
            eviction_rate: 1,
            latencies_us: latencies,
            overheads: OverheadTotals::default(),
            store_stats: StoreStats::default(),
            provisions: vec![ProvisionKind::Cold, ProvisionKind::Restored(5)],
            checkpoint_ms: vec![60.0, 70.0],
            restore_ms: vec![50.0],
            snapshot_mb: vec![10.0, 14.0],
            snapshot_requests: vec![1, 5],
            provision_us: 1000.0,
            codec: CodecStats::default(),
            restore_strategy: RestoreStrategy::Eager,
            restore_infos: vec![],
            chain: ChainStats::default(),
            provisioning: ProvisionStats::default(),
            storage: StorageStats::default(),
        }
    }

    #[test]
    fn medians_and_percentiles() {
        let r = result(vec![10.0, 20.0, 30.0]);
        assert_eq!(r.median_us(), 20.0);
        assert_eq!(r.percentile_us(100.0), 30.0);
        assert!(result(vec![]).median_us().is_nan());
    }

    #[test]
    fn provision_counters() {
        let r = result(vec![1.0]);
        assert_eq!(r.cold_starts(), 1);
        assert_eq!(r.restores(), 1);
    }

    #[test]
    fn snapshot_size_mean() {
        assert_eq!(result(vec![1.0]).mean_snapshot_mb(), 12.0);
        let mut r = result(vec![1.0]);
        r.snapshot_mb.clear();
        assert_eq!(r.mean_snapshot_mb(), 0.0);
    }

    #[test]
    fn restore_info_aggregates() {
        let mut r = result(vec![1.0]);
        assert!(r.median_restore_us().is_nan());
        assert_eq!(r.restore_bytes(), 0);
        r.restore_infos = vec![
            RestoreInfo::eager(40_000.0, 1_000),
            RestoreInfo {
                strategy: RestoreStrategy::Lazy,
                faults: 3,
                prefetched_pages: 2,
                restore_us: 9_000.0,
                fault_us: 1_000.0,
                decompress_us: 0.0,
                bytes_transferred: 500,
            },
        ];
        assert_eq!(r.median_restore_us(), (40_000.0 + 10_000.0) / 2.0);
        assert_eq!(r.restore_bytes(), 1_500);
        assert_eq!(r.total_faults(), 3);
        assert_eq!(r.prefetched_pages(), 2);
    }

    #[test]
    fn cdf_and_convergence_available() {
        let mut lat = vec![100.0; 30];
        lat.extend(vec![50.0; 30]);
        let r = result(lat);
        assert!(r.cdf().is_some());
        assert!(r.convergence_request().is_some());
    }
}

//! Input-aware orchestration — §6's future-work direction, implemented.
//!
//! "For serverless applications with multiple traffic patterns
//! (workloads), different orchestrators can be specialized towards
//! specific patterns. By doing so, instances can specialize for certain
//! workloads, and thereby achieve a closer 'fit' to the data rather than
//! forcing a single snapshot to handle all workloads a function is subject
//! to."
//!
//! [`run_partitioned`] classifies each request by its input-size factor
//! into one of `classes` buckets (log-spaced around the base size) and
//! routes it to a per-class deployment: its own Orchestrator, weight
//! vector, snapshot pool, and workers. Two specialization effects emerge:
//!
//! 1. each class's weight vector sees a far narrower latency distribution,
//!    so the EWMA estimates converge faster and snapshot selection is
//!    sharper;
//! 2. each class's workers see inputs close to their class centre, so
//!    speculative code tuned to that centre deoptimizes less — the request
//!    novelty is re-based to the class centre, exactly the "divergent code
//!    paths and execution profiles" argument of §6.

use crate::config::RunConfig;
use crate::result::{ProvisionKind, RunResult};
use crate::stale::IoStaleModel;
use crate::worker::Worker;
use pronghorn_checkpoint::{CheckpointScratch, CodecStats, SimCriuEngine, SnapshotMeta};
use pronghorn_core::{baselines::make_policy, Orchestrator};
use pronghorn_jit::Runtime;
use pronghorn_kv::KvStore;
use pronghorn_restore::{RestoreInfo, RestoreStrategy};
use pronghorn_sim::{Kernel, RngFactory, SimTime};
use pronghorn_store::{saturating_accumulate, ObjectStore};
use pronghorn_workloads::{InputVariance, Workload};

/// One input class's deployment.
struct ClassDeployment {
    orch: Orchestrator,
    store: ObjectStore,
    worker: Option<Worker>,
    /// Encode cache for this class's worker; invalidated on every swap.
    scratch: CheckpointScratch,
    /// Geometric centre of the class's size-factor range.
    centre: f64,
    worker_seq: u64,
}

/// Classifies `factor` into one of `classes` log-spaced buckets over
/// `[0.08, 12.0]` (the variance model's clamp range).
pub fn classify_factor(factor: f64, classes: usize) -> usize {
    debug_assert!(classes >= 1);
    let (lo, hi) = (0.08f64.ln(), 12.0f64.ln());
    let t = ((factor.max(1e-9).ln() - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * classes as f64) as usize).min(classes - 1)
}

/// Geometric centre of class `k` of `classes`.
pub fn class_centre(k: usize, classes: usize) -> f64 {
    let (lo, hi) = (0.08f64.ln(), 12.0f64.ln());
    let width = (hi - lo) / classes as f64;
    (lo + width * (k as f64 + 0.5)).exp()
}

/// Runs the closed-loop protocol with per-input-class deployments.
///
/// With `classes == 1` this degrades to (a slightly re-seeded version of)
/// the ordinary shared deployment, which makes A/B comparisons easy.
///
/// # Examples
///
/// ```
/// use pronghorn_core::PolicyKind;
/// use pronghorn_platform::{run_partitioned, RunConfig};
/// use pronghorn_workloads::{by_name, InputVariance};
///
/// let workload = by_name("PageRank").unwrap();
/// let cfg = RunConfig::paper(PolicyKind::RequestCentric, 4, 7)
///     .with_invocations(40)
///     .with_variance(InputVariance::bimodal());
/// let result = run_partitioned(&workload, &cfg, 2);
/// assert_eq!(result.latencies_us.len(), 40);
/// ```
pub fn run_partitioned(workload: &dyn Workload, cfg: &RunConfig, classes: usize) -> RunResult {
    let classes = classes.max(1);
    let factory = RngFactory::new(cfg.seed);
    let engine = SimCriuEngine::new();
    let mut policy_rng = factory.stream("policy");
    let mut engine_rng = factory.stream("engine");
    let stale = IoStaleModel::default();
    let policy_config = cfg.resolve_policy_config(workload.kind());

    let mut deployments: Vec<ClassDeployment> = (0..classes)
        .map(|k| {
            let store = ObjectStore::new();
            ClassDeployment {
                orch: Orchestrator::new(
                    make_policy(cfg.policy, policy_config),
                    KvStore::new(),
                    store.clone(),
                    format!("{}-class{k}", workload.name()),
                ),
                store,
                worker: None,
                scratch: CheckpointScratch::new(),
                centre: class_centre(k, classes),
                worker_seq: 0,
            }
        })
        .collect();

    let mut latencies = Vec::with_capacity(cfg.invocations as usize);
    let mut provisions = Vec::new();
    let mut checkpoint_ms = Vec::new();
    let mut restore_ms = Vec::new();
    let mut snapshot_mb = Vec::new();
    let mut snapshot_requests = Vec::new();
    let mut provision_us = 0.0;
    let mut restore_infos = Vec::new();

    // Closed-loop arrival pump: request `i` fires at `(i + 1) * request_gap`,
    // exactly the instants of the old `now += gap` for-loop, but driven
    // through the configured kernel so both implementations are exercised.
    let total = u64::from(cfg.invocations);
    let mut kernel: Kernel<u64> = Kernel::new(cfg.kernel);
    if total > 0 {
        kernel.schedule(SimTime::ZERO + cfg.request_gap, 0);
    }
    while let Some((now, i)) = kernel.pop() {
        let mut input_rng = factory.stream_indexed("input", i);
        let mut request = workload.generate(&mut input_rng, cfg.variance);
        let class = classify_factor(request.size_factor, classes);
        let deployment = &mut deployments[class];

        // Specialization effect 2: speculation inside a class is tuned to
        // the class centre, so novelty is measured against it.
        let rebased_novelty = InputVariance::novelty_of(request.size_factor / deployment.centre);
        request = request.novelty(rebased_novelty);

        if deployment.worker.is_none() {
            deployment.scratch.invalidate();
            let plan = deployment.orch.begin_worker(&mut policy_rng);
            let mut cost = plan.startup_overhead.as_micros() as f64;
            let wrng = factory.stream_indexed(&format!("worker-c{class}"), deployment.worker_seq);
            let (runtime, resume, restore) = match plan.snapshot {
                Some(snapshot) => match engine.restore::<Runtime, _>(&mut engine_rng, &snapshot) {
                    Ok((rt, c)) => {
                        cost += c.as_micros() as f64;
                        restore_ms.push(c.as_millis_f64());
                        let info = RestoreInfo::eager(c.as_micros() as f64, snapshot.nominal_size);
                        (rt, plan.resume_request, Some(info))
                    }
                    Err(_) => {
                        let mut boot = factory
                            .stream_indexed(&format!("boot-c{class}"), deployment.worker_seq);
                        let (rt, c) = Runtime::cold_start(
                            workload.runtime_profile(),
                            workload.method_profiles(),
                            &mut boot,
                        );
                        cost += c.as_micros() as f64;
                        (rt, 0, None)
                    }
                },
                None => {
                    let mut boot =
                        factory.stream_indexed(&format!("boot-c{class}"), deployment.worker_seq);
                    let (rt, c) = Runtime::cold_start(
                        workload.runtime_profile(),
                        workload.method_profiles(),
                        &mut boot,
                    );
                    cost += c.as_micros() as f64;
                    (rt, 0, None)
                }
            };
            provision_us += cost;
            provisions.push(if restore.is_some() {
                ProvisionKind::Restored(resume)
            } else {
                ProvisionKind::Cold
            });
            // The partitioned path restores eagerly regardless of
            // `cfg.restore`, so the info is final at provision time.
            if let Some(info) = restore {
                restore_infos.push(info);
            }
            deployment.worker = Some(Worker::new(
                runtime,
                wrng,
                resume,
                plan.checkpoint_at,
                restore,
                now,
            ));
            deployment.worker_seq += 1;
        }

        let worker = deployment.worker.as_mut().expect("just provisioned");
        let request_number = worker.next_request_number();
        let breakdown = worker.runtime.execute(&request, &mut worker.rng);
        let mut latency = breakdown.total_us();
        if worker.freshly_restored(stale.horizon) {
            latency += request.io_us
                * workload.io_stale_sensitivity()
                * stale.penalty_frac(worker.resume_request, policy_config.w, worker.served);
        }
        latencies.push(latency);
        deployment
            .orch
            .complete_request(request_number.min(u64::from(u32::MAX)) as u32, latency);
        worker.served += 1;
        worker.last_active = now;

        if worker.checkpoint_due() {
            worker.checkpoint_at = None;
            let meta = SnapshotMeta {
                function: format!("{}-class{class}", workload.name()),
                request_number: worker.runtime.requests_executed() as u32,
                runtime: workload.kind().label().to_string(),
            };
            let (snapshot, downtime) = engine.checkpoint_with(
                &mut deployment.scratch,
                &mut engine_rng,
                &worker.runtime,
                meta,
            );
            checkpoint_ms.push(downtime.as_millis_f64());
            snapshot_mb.push(snapshot.nominal_size_mb());
            snapshot_requests.push(snapshot.meta.request_number);
            deployment
                .orch
                .record_snapshot(&snapshot, downtime, &mut policy_rng);
        }
        if deployment.worker.as_ref().expect("live").served >= cfg.eviction_rate {
            deployment.worker = None;
        }
        if i + 1 < total {
            kernel.schedule(now + cfg.request_gap, i + 1);
        }
    }

    // Merge per-class store stats for reporting.
    let mut store_stats = deployments[0].store.stats();
    for d in &deployments[1..] {
        let s = d.store.stats();
        store_stats.bytes_stored += s.bytes_stored;
        store_stats.peak_bytes_stored += s.peak_bytes_stored;
        store_stats.bytes_uploaded += s.bytes_uploaded;
        store_stats.bytes_downloaded += s.bytes_downloaded;
        store_stats.bytes_deduped += s.bytes_deduped;
        store_stats.objects += s.objects;
        store_stats.puts += s.puts;
        store_stats.gets += s.gets;
        store_stats.deletes += s.deletes;
    }
    let mut overheads = *deployments[0].orch.overheads();
    for d in &deployments[1..] {
        let o = d.orch.overheads();
        overheads.startup_us += o.startup_us;
        overheads.startups += o.startups;
        overheads.request_us += o.request_us;
        overheads.requests += o.requests;
        overheads.checkpoint_us += o.checkpoint_us;
        overheads.checkpoints += o.checkpoints;
        saturating_accumulate(
            "nominal_bytes_uploaded",
            &mut overheads.nominal_bytes_uploaded,
            o.nominal_bytes_uploaded,
        );
        saturating_accumulate(
            "nominal_bytes_downloaded",
            &mut overheads.nominal_bytes_downloaded,
            o.nominal_bytes_downloaded,
        );
        overheads.peak_pool_nominal_bytes += o.peak_pool_nominal_bytes;
    }

    RunResult {
        workload: workload.name().to_string(),
        policy: cfg.policy,
        eviction_rate: cfg.eviction_rate,
        latencies_us: latencies,
        overheads,
        store_stats,
        provisions,
        checkpoint_ms,
        restore_ms,
        snapshot_mb,
        snapshot_requests,
        provision_us,
        codec: {
            let mut codec = CodecStats::default();
            for d in &deployments {
                codec.merge(d.scratch.stats());
            }
            codec
        },
        restore_strategy: RestoreStrategy::Eager,
        restore_infos,
        // Partitioned deployments checkpoint full snapshots only.
        chain: pronghorn_store::ChainStats::default(),
        // Partitioned deployments are purely reactive.
        provisioning: pronghorn_forecast::ProvisionStats::default(),
        storage: {
            let mut storage = pronghorn_store::StorageStats::default();
            for d in &deployments {
                storage.merge(&d.orch.storage_stats());
            }
            storage
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pronghorn_core::PolicyKind;
    use pronghorn_workloads::by_name;

    #[test]
    fn classification_is_total_and_ordered() {
        for classes in 1..6 {
            for &f in &[0.01, 0.08, 0.2, 1.0, 3.0, 12.0, 100.0] {
                let k = classify_factor(f, classes);
                assert!(k < classes, "f={f} classes={classes} -> {k}");
            }
            // Monotone: larger factors never land in smaller classes.
            let ks: Vec<usize> = [0.1, 0.5, 1.0, 2.0, 8.0]
                .iter()
                .map(|&f| classify_factor(f, classes))
                .collect();
            assert!(ks.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn class_centres_are_inside_their_buckets() {
        for classes in 1..5 {
            for k in 0..classes {
                let centre = class_centre(k, classes);
                assert_eq!(classify_factor(centre, classes), k);
            }
        }
    }

    #[test]
    fn partitioned_run_serves_every_request() {
        let bench = by_name("DFS").unwrap();
        let cfg = RunConfig::paper(PolicyKind::RequestCentric, 4, 31)
            .with_invocations(160)
            .with_variance(InputVariance::bimodal());
        let r = run_partitioned(&bench, &cfg, 2);
        assert_eq!(r.latencies_us.len(), 160);
        assert!(r.checkpoint_ms.len() > 2);
    }

    #[test]
    fn specialization_beats_the_shared_deployment_on_bimodal_input() {
        // §6's claim: per-pattern orchestrators fit bimodal traffic better
        // than one shared deployment.
        let bench = by_name("PageRank").unwrap();
        let cfg = RunConfig::paper(PolicyKind::RequestCentric, 1, 5150)
            .with_invocations(400)
            .with_variance(InputVariance::bimodal());
        let shared = crate::runner::run_closed_loop(&bench, &cfg);
        let split = run_partitioned(&bench, &cfg, 2);
        assert!(
            split.median_us() < shared.median_us() * 1.02,
            "partitioned {} vs shared {}",
            split.median_us(),
            shared.median_us()
        );
    }

    #[test]
    fn one_class_matches_request_count_of_shared() {
        let bench = by_name("Hash").unwrap();
        let cfg = RunConfig::paper(PolicyKind::AfterFirst, 4, 9).with_invocations(60);
        let r = run_partitioned(&bench, &cfg, 1);
        assert_eq!(r.latencies_us.len(), 60);
    }
}

//! A function worker: one runtime instance plus its lifecycle state.

use pronghorn_jit::Runtime;
use pronghorn_sim::SimTime;
use rand::rngs::SmallRng;

/// A live worker hosting one function runtime.
#[derive(Debug)]
pub struct Worker {
    /// The JIT runtime executing requests.
    pub runtime: Runtime,
    /// Per-worker RNG stream (JIT jitter, deopt draws).
    pub rng: SmallRng,
    /// Requests served by *this* worker (not the lineage).
    pub served: u32,
    /// Request number the worker resumed at (0 for a cold start).
    pub resume_request: u32,
    /// Absolute request number at which the policy wants a checkpoint.
    pub checkpoint_at: Option<u32>,
    /// Whether the worker was restored from a snapshot.
    pub restored: bool,
    /// Virtual time of the last served request (idle-eviction clock).
    pub last_active: SimTime,
}

impl Worker {
    /// Creates a worker around a freshly provisioned runtime.
    pub fn new(
        runtime: Runtime,
        rng: SmallRng,
        resume_request: u32,
        checkpoint_at: Option<u32>,
        restored: bool,
        now: SimTime,
    ) -> Self {
        Worker {
            runtime,
            rng,
            served: 0,
            resume_request,
            checkpoint_at,
            restored,
            last_active: now,
        }
    }

    /// 0-based request number of the *next* request this worker will serve
    /// within its function's lineage.
    pub fn next_request_number(&self) -> u64 {
        self.runtime.requests_executed()
    }

    /// Whether the policy's checkpoint point has been reached.
    pub fn checkpoint_due(&self) -> bool {
        match self.checkpoint_at {
            Some(at) => self.runtime.requests_executed() >= u64::from(at),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pronghorn_jit::{MethodProfile, MethodWork, RequestWork, RuntimeProfile};
    use rand::SeedableRng;

    fn runtime() -> (Runtime, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(1);
        let (rt, _) = Runtime::cold_start(
            RuntimeProfile::jvm(),
            vec![MethodProfile::new("m")],
            &mut rng,
        );
        (rt, rng)
    }

    #[test]
    fn next_request_number_tracks_lineage() {
        let (rt, rng) = runtime();
        let mut w = Worker::new(rt, rng, 0, Some(2), false, SimTime::ZERO);
        assert_eq!(w.next_request_number(), 0);
        assert!(!w.checkpoint_due());
        let work = RequestWork::new(vec![MethodWork {
            method: 0,
            units: 10.0,
            calls: 1.0,
        }]);
        w.runtime.execute(&work, &mut w.rng);
        w.runtime.execute(&work, &mut w.rng);
        assert_eq!(w.next_request_number(), 2);
        assert!(w.checkpoint_due());
    }

    #[test]
    fn checkpoint_at_zero_is_due_immediately() {
        let (rt, rng) = runtime();
        let w = Worker::new(rt, rng, 0, Some(0), false, SimTime::ZERO);
        assert!(w.checkpoint_due());
        let (rt, rng) = runtime();
        let w = Worker::new(rt, rng, 0, None, false, SimTime::ZERO);
        assert!(!w.checkpoint_due());
    }
}

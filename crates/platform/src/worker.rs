//! A function worker: one runtime instance plus its lifecycle state.

use bytes::Bytes;
use pronghorn_checkpoint::SnapshotId;
use pronghorn_jit::Runtime;
use pronghorn_restore::{LazyImage, RestoreInfo};
use pronghorn_sim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use std::collections::BTreeSet;

/// Lineage state a delta-checkpointing worker carries: the snapshot it
/// was restored from (the prospective delta parent) and the image pages
/// its requests have dirtied since.
#[derive(Debug, Clone)]
pub struct DeltaTracking {
    /// Snapshot this worker was restored from.
    pub parent_id: SnapshotId,
    /// The parent's payload, kept as the physical diff base (shared
    /// buffer, not a copy).
    pub parent_payload: Bytes,
    /// Content address of the parent payload.
    pub parent_hash: u64,
    /// The parent's delta-chain depth (0 = chain root).
    pub parent_depth: u32,
    /// Image pages the parent covered, on the nominal page grid.
    pub parent_page_count: u32,
    /// Nominal image pages touched by requests served since the restore —
    /// the union of the runtime's deterministic page-access traces, i.e.
    /// what an incremental engine's soft-dirty tracking would report.
    pub dirty_pages: BTreeSet<u32>,
}

/// A live worker hosting one function runtime.
#[derive(Debug)]
pub struct Worker {
    /// The JIT runtime executing requests.
    pub runtime: Runtime,
    /// Per-worker RNG stream (JIT jitter, deopt draws).
    pub rng: SmallRng,
    /// Requests served by *this* worker (not the lineage).
    pub served: u32,
    /// Request number the worker resumed at (0 for a cold start).
    pub resume_request: u32,
    /// Absolute request number at which the policy wants a checkpoint.
    pub checkpoint_at: Option<u32>,
    /// How this worker was restored, with its accumulated fault/prefetch
    /// stats; `None` for a cold boot.
    pub restore: Option<RestoreInfo>,
    /// The lazily-mapped snapshot image, when restored under a lazy
    /// strategy; eager restores and cold boots have none.
    pub image: Option<LazyImage>,
    /// Delta lineage state, present only when delta checkpointing is on
    /// and the worker was restored from a snapshot (cold-started workers
    /// have no parent and always checkpoint full roots).
    pub delta: Option<DeltaTracking>,
    /// Virtual time of the last served request (idle-eviction clock).
    pub last_active: SimTime,
    /// When this worker was warmed by a *pre-restore* (predictive
    /// provisioning) and has not yet served; `None` for reactively
    /// provisioned workers and after the first request resolves the
    /// pre-restore. While set, [`Self::pre_warm_expires`] bounds how long
    /// the warm worker is held before being retired as wasted.
    pub pre_warmed_since: Option<SimTime>,
    /// When an unused pre-restored worker expires (wasted). Meaningful
    /// only while [`Self::pre_warmed_since`] is set.
    pub pre_warm_expires: SimTime,
    /// Requests' worth of IO-state freshening the worker banked while
    /// pre-warmed: background re-establishment between the pre-restore
    /// and the first request ages the stale-IO penalty down exactly as
    /// served requests would. Zero for reactive workers, so the stale
    /// math is bit-identical with provisioning disabled.
    pub prewarm_credit: u32,
    /// How far the serving node's clock had run past the restored
    /// snapshot's checkpoint time when the restore crossed a node
    /// boundary: the staleness horizon is per-*node*, not per-run, so a
    /// remote restore re-establishes older IO state than a local one.
    /// Zero for cold boots, local restores and every single-node run —
    /// the single-node staleness math is bit-identical at age zero.
    pub stale_age: SimDuration,
}

impl Worker {
    /// Creates a worker around a freshly provisioned runtime.
    pub fn new(
        runtime: Runtime,
        rng: SmallRng,
        resume_request: u32,
        checkpoint_at: Option<u32>,
        restore: Option<RestoreInfo>,
        now: SimTime,
    ) -> Self {
        Worker {
            runtime,
            rng,
            served: 0,
            resume_request,
            checkpoint_at,
            restore,
            image: None,
            delta: None,
            last_active: now,
            pre_warmed_since: None,
            pre_warm_expires: SimTime::ZERO,
            prewarm_credit: 0,
            stale_age: SimDuration::ZERO,
        }
    }

    /// Whether the worker was restored from a snapshot (at any point in
    /// its history — not the same thing as being *freshly* restored).
    pub fn restored(&self) -> bool {
        self.restore.is_some()
    }

    /// Whether the worker was restored *and* is still within its first
    /// `horizon` requests — the window in which restored IO state is
    /// stale. The old `restored: bool` conflated this with "was ever
    /// restored"; staleness decays with served requests, so the two
    /// diverge as soon as a restored worker warms back up.
    pub fn freshly_restored(&self, horizon: u32) -> bool {
        self.restore.is_some() && self.served < horizon
    }

    /// 0-based request number of the *next* request this worker will serve
    /// within its function's lineage.
    pub fn next_request_number(&self) -> u64 {
        self.runtime.requests_executed()
    }

    /// Whether the policy's checkpoint point has been reached.
    pub fn checkpoint_due(&self) -> bool {
        match self.checkpoint_at {
            Some(at) => self.runtime.requests_executed() >= u64::from(at),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pronghorn_jit::{MethodProfile, MethodWork, RequestWork, RuntimeProfile};
    use rand::SeedableRng;

    fn runtime() -> (Runtime, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(1);
        let (rt, _) = Runtime::cold_start(
            RuntimeProfile::jvm(),
            vec![MethodProfile::new("m")],
            &mut rng,
        );
        (rt, rng)
    }

    #[test]
    fn next_request_number_tracks_lineage() {
        let (rt, rng) = runtime();
        let mut w = Worker::new(rt, rng, 0, Some(2), None, SimTime::ZERO);
        assert_eq!(w.next_request_number(), 0);
        assert!(!w.checkpoint_due());
        let work = RequestWork::new(vec![MethodWork {
            method: 0,
            units: 10.0,
            calls: 1.0,
        }]);
        w.runtime.execute(&work, &mut w.rng);
        w.runtime.execute(&work, &mut w.rng);
        assert_eq!(w.next_request_number(), 2);
        assert!(w.checkpoint_due());
    }

    #[test]
    fn checkpoint_at_zero_is_due_immediately() {
        let (rt, rng) = runtime();
        let w = Worker::new(rt, rng, 0, Some(0), None, SimTime::ZERO);
        assert!(w.checkpoint_due());
        let (rt, rng) = runtime();
        let w = Worker::new(rt, rng, 0, None, None, SimTime::ZERO);
        assert!(!w.checkpoint_due());
    }

    #[test]
    fn freshly_restored_decays_with_served_requests() {
        let (rt, rng) = runtime();
        let info = RestoreInfo::eager(50_000.0, 12 << 20);
        let mut w = Worker::new(rt, rng, 5, None, Some(info), SimTime::ZERO);
        assert!(w.restored());
        assert!(w.freshly_restored(4));
        w.served = 3;
        assert!(w.freshly_restored(4));
        w.served = 4;
        // Still "restored", but no longer fresh: stale-IO penalties stop.
        assert!(w.restored());
        assert!(!w.freshly_restored(4));
        // A cold worker is never fresh.
        let (rt, rng) = runtime();
        let cold = Worker::new(rt, rng, 0, None, None, SimTime::ZERO);
        assert!(!cold.restored());
        assert!(!cold.freshly_restored(4));
    }
}

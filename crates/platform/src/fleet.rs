//! Multi-worker fleet simulation — §5.3's amortization argument.
//!
//! "Checkpointing overheads can be further mitigated when serverless
//! applications are run in a distributed context ... Only a nonempty
//! subset of containers running a given application need to be exploring
//! in order to realize performance benefits — the remaining containers can
//! simply restore from the best snapshots found so far. Exploration
//! overheads can therefore be amortized over many containers, with the
//! degree of amortization chosen by the cloud provider."
//!
//! [`run_fleet`] drives `fleet_size` concurrent workers of one function
//! against a shared Orchestrator (one Database, one Object Store — exactly
//! the sharing topology of Figure 2), using the deterministic event kernel
//! selected by `cfg.kernel`:
//! requests arrive in an open loop and are dispatched to the least-loaded
//! worker; each worker follows the policy independently, but only the
//! configured number of *explorer* workers take checkpoints — the
//! amortization knob.

use crate::config::RunConfig;
use crate::result::{ProvisionKind, RunResult};
use crate::stale::IoStaleModel;
use crate::worker::Worker;
use pronghorn_checkpoint::{CheckpointScratch, CodecStats, SimCriuEngine, SnapshotMeta};
use pronghorn_core::{baselines::make_policy, Orchestrator};
use pronghorn_jit::Runtime;
use pronghorn_kv::KvStore;
use pronghorn_restore::{RestoreInfo, RestoreStrategy};
use pronghorn_sim::{Kernel, RngFactory, SimDuration, SimTime};
use pronghorn_store::ObjectStore;
use pronghorn_workloads::Workload;

/// Fleet-specific configuration on top of [`RunConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Concurrent workers serving the function.
    pub fleet_size: usize,
    /// How many of them explore (take checkpoints); the rest only restore
    /// from the best snapshots found so far. `0` disables checkpointing
    /// entirely.
    pub explorers: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            fleet_size: 4,
            explorers: 1,
        }
    }
}

/// Discrete events of the fleet simulation.
enum Event {
    /// A request arrives at the gateway.
    Arrival(u64),
}

/// Runs an open-loop fleet: `cfg.invocations` arrivals spaced by
/// `cfg.request_gap / fleet_size` (so per-worker load matches the
/// closed-loop runs), dispatched across `fleet.fleet_size` workers sharing
/// one orchestrator. The fleet path restores eagerly regardless of
/// `cfg.restore` — lazy strategies are a closed-loop/trace concern; here
/// the restore statistics are still reported so fleet runs feed the same
/// summaries.
///
/// # Examples
///
/// ```
/// use pronghorn_core::PolicyKind;
/// use pronghorn_platform::{run_fleet, FleetConfig, RunConfig};
/// use pronghorn_workloads::by_name;
///
/// let workload = by_name("DFS").unwrap();
/// let cfg = RunConfig::paper(PolicyKind::RequestCentric, 4, 7).with_invocations(40);
/// let fleet = FleetConfig { fleet_size: 4, explorers: 1 };
/// let result = run_fleet(&workload, &cfg, &fleet);
/// assert_eq!(result.latencies_us.len(), 40);
/// ```
pub fn run_fleet(workload: &dyn Workload, cfg: &RunConfig, fleet: &FleetConfig) -> RunResult {
    assert!(fleet.fleet_size >= 1, "fleet needs at least one worker");
    let factory = RngFactory::new(cfg.seed);
    let kv = KvStore::new();
    let store = ObjectStore::new();
    let policy_config = cfg.resolve_policy_config(workload.kind());
    let policy = make_policy(cfg.policy, policy_config);
    let mut orch = Orchestrator::new(policy, kv, store.clone(), workload.name());
    let engine = SimCriuEngine::new();
    let mut policy_rng = factory.stream("policy");
    let mut engine_rng = factory.stream("engine");
    let stale = IoStaleModel::default();

    let mut queue: Kernel<Event> = Kernel::new(cfg.kernel);
    let gap =
        SimDuration::from_micros((cfg.request_gap.as_micros() / fleet.fleet_size as u64).max(1));
    let mut at = SimTime::ZERO;
    for i in 0..u64::from(cfg.invocations) {
        at += gap;
        queue.schedule(at, Event::Arrival(i));
    }

    // Worker slots: None = needs provisioning. `served_since_start` drives
    // per-slot eviction at the configured rate.
    let mut slots: Vec<Option<Worker>> = (0..fleet.fleet_size).map(|_| None).collect();
    // One encode cache per slot: caches are only valid per process
    // instance, and slots swap instances independently.
    let mut scratches: Vec<CheckpointScratch> = (0..fleet.fleet_size)
        .map(|_| CheckpointScratch::new())
        .collect();
    let mut worker_seq = 0u64;

    let mut latencies = Vec::with_capacity(cfg.invocations as usize);
    let mut provisions = Vec::new();
    let mut checkpoint_ms = Vec::new();
    let mut restore_ms = Vec::new();
    let mut snapshot_mb = Vec::new();
    let mut snapshot_requests = Vec::new();
    let mut provision_us = 0.0;
    let mut restore_infos = Vec::new();

    while let Some((now, Event::Arrival(index))) = queue.pop() {
        // Round-robin dispatch over slots.
        let slot = (index % fleet.fleet_size as u64) as usize;
        // Idle-eviction also applies per slot.
        if let Some(w) = &slots[slot] {
            if now.saturating_since(w.last_active) > cfg.idle_timeout {
                slots[slot] = None;
            }
        }
        if slots[slot].is_none() {
            // New process instance in this slot: its cached encode (if any)
            // must not be reused.
            scratches[slot].invalidate();
            let plan = orch.begin_worker(&mut policy_rng);
            let mut cost = plan.startup_overhead.as_micros() as f64;
            let wrng = factory.stream_indexed("worker", worker_seq);
            let (runtime, resume, restore) = match plan.snapshot {
                Some(snapshot) => match engine.restore::<Runtime, _>(&mut engine_rng, &snapshot) {
                    Ok((rt, c)) => {
                        cost += c.as_micros() as f64;
                        restore_ms.push(c.as_millis_f64());
                        let info = RestoreInfo::eager(c.as_micros() as f64, snapshot.nominal_size);
                        (rt, plan.resume_request, Some(info))
                    }
                    Err(_) => {
                        let mut boot = factory.stream_indexed("boot", worker_seq);
                        let (rt, c) = Runtime::cold_start(
                            workload.runtime_profile(),
                            workload.method_profiles(),
                            &mut boot,
                        );
                        cost += c.as_micros() as f64;
                        (rt, 0, None)
                    }
                },
                None => {
                    let mut boot = factory.stream_indexed("boot", worker_seq);
                    let (rt, c) = Runtime::cold_start(
                        workload.runtime_profile(),
                        workload.method_profiles(),
                        &mut boot,
                    );
                    cost += c.as_micros() as f64;
                    (rt, 0, None)
                }
            };
            provision_us += cost;
            provisions.push(if restore.is_some() {
                ProvisionKind::Restored(resume)
            } else {
                ProvisionKind::Cold
            });
            // Eager restores accrue no per-request fault stats, so the
            // info is final at provision time.
            if let Some(info) = restore {
                restore_infos.push(info);
            }
            // Non-explorer slots never checkpoint: the amortization knob.
            let checkpoint_at = if slot < fleet.explorers {
                plan.checkpoint_at
            } else {
                None
            };
            slots[slot] = Some(Worker::new(
                runtime,
                wrng,
                resume,
                checkpoint_at,
                restore,
                now,
            ));
            worker_seq += 1;
        }

        let worker = slots[slot].as_mut().expect("just provisioned");
        let mut input_rng = factory.stream_indexed("input", index);
        let request = workload.generate(&mut input_rng, cfg.variance);
        let request_number = worker.next_request_number();
        let breakdown = worker.runtime.execute(&request, &mut worker.rng);
        let mut latency = breakdown.total_us();
        if worker.freshly_restored(stale.horizon) {
            latency += request.io_us
                * workload.io_stale_sensitivity()
                * stale.penalty_frac(worker.resume_request, policy_config.w, worker.served);
        }
        latencies.push(latency);
        orch.complete_request(request_number.min(u64::from(u32::MAX)) as u32, latency);
        worker.served += 1;
        worker.last_active = now;

        if worker.checkpoint_due() {
            worker.checkpoint_at = None;
            let meta = SnapshotMeta {
                function: workload.name().to_string(),
                request_number: worker.runtime.requests_executed() as u32,
                runtime: workload.kind().label().to_string(),
            };
            let (snapshot, downtime) = engine.checkpoint_with(
                &mut scratches[slot],
                &mut engine_rng,
                &worker.runtime,
                meta,
            );
            checkpoint_ms.push(downtime.as_millis_f64());
            snapshot_mb.push(snapshot.nominal_size_mb());
            snapshot_requests.push(snapshot.meta.request_number);
            orch.record_snapshot(&snapshot, downtime, &mut policy_rng);
        }
        if slots[slot].as_ref().expect("live").served >= cfg.eviction_rate {
            slots[slot] = None;
        }
    }

    RunResult {
        workload: workload.name().to_string(),
        policy: cfg.policy,
        eviction_rate: cfg.eviction_rate,
        latencies_us: latencies,
        overheads: *orch.overheads(),
        store_stats: store.stats(),
        provisions,
        checkpoint_ms,
        restore_ms,
        snapshot_mb,
        snapshot_requests,
        provision_us,
        codec: {
            let mut codec = CodecStats::default();
            for s in &scratches {
                codec.merge(s.stats());
            }
            codec
        },
        restore_strategy: RestoreStrategy::Eager,
        restore_infos,
        // The fleet runner checkpoints full snapshots only; its
        // orchestrator reports all-zero chain stats.
        chain: orch.chain_stats(),
        // The fleet runner is purely reactive (no predictive
        // provisioning path).
        provisioning: pronghorn_forecast::ProvisionStats::default(),
        storage: orch.storage_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pronghorn_core::PolicyKind;
    use pronghorn_workloads::{by_name, InputVariance};

    fn cfg(policy: PolicyKind) -> RunConfig {
        RunConfig::paper(policy, 4, 99)
            .with_invocations(240)
            .with_variance(InputVariance::none())
    }

    #[test]
    fn fleet_serves_every_arrival() {
        let bench = by_name("DFS").unwrap();
        let fleet = FleetConfig {
            fleet_size: 4,
            explorers: 1,
        };
        let r = run_fleet(&bench, &cfg(PolicyKind::RequestCentric), &fleet);
        assert_eq!(r.latencies_us.len(), 240);
        assert!(r.checkpoint_ms.len() > 1);
    }

    #[test]
    fn single_worker_fleet_matches_closed_loop_shape() {
        let bench = by_name("DFS").unwrap();
        let fleet = FleetConfig {
            fleet_size: 1,
            explorers: 1,
        };
        let r = run_fleet(&bench, &cfg(PolicyKind::RequestCentric), &fleet);
        // Same protocol as the closed loop: one provision per lifetime.
        assert_eq!(r.provisions.len(), 240 / 4);
    }

    #[test]
    fn explorers_knob_bounds_checkpointers() {
        let bench = by_name("DFS").unwrap();
        let none = run_fleet(
            &bench,
            &cfg(PolicyKind::RequestCentric),
            &FleetConfig {
                fleet_size: 4,
                explorers: 0,
            },
        );
        assert!(none.checkpoint_ms.is_empty());
        // With zero explorers there are never snapshots: every provision is
        // a cold start.
        assert_eq!(none.cold_starts(), none.provisions.len());

        let all = run_fleet(
            &bench,
            &cfg(PolicyKind::RequestCentric),
            &FleetConfig {
                fleet_size: 4,
                explorers: 4,
            },
        );
        let one = run_fleet(
            &bench,
            &cfg(PolicyKind::RequestCentric),
            &FleetConfig {
                fleet_size: 4,
                explorers: 1,
            },
        );
        assert!(all.checkpoint_ms.len() > one.checkpoint_ms.len());
    }

    #[test]
    fn non_explorers_still_benefit_from_shared_snapshots() {
        // §5.3's amortization: one explorer is enough for the whole fleet
        // to hot-start.
        let bench = by_name("DFS").unwrap();
        let fleet = FleetConfig {
            fleet_size: 4,
            explorers: 1,
        };
        let shared = run_fleet(&bench, &cfg(PolicyKind::RequestCentric), &fleet);
        assert!(
            shared.restores() > shared.provisions.len() / 2,
            "{} restores of {} provisions",
            shared.restores(),
            shared.provisions.len()
        );
        // And it beats a no-checkpoint fleet.
        let cold = run_fleet(&bench, &cfg(PolicyKind::Cold), &fleet);
        assert!(shared.median_us() < cold.median_us());
    }

    #[test]
    fn fleet_runs_are_reproducible() {
        let bench = by_name("Hash").unwrap();
        let fleet = FleetConfig::default();
        let a = run_fleet(&bench, &cfg(PolicyKind::RequestCentric), &fleet);
        let b = run_fleet(&bench, &cfg(PolicyKind::RequestCentric), &fleet);
        assert_eq!(a.latencies_us, b.latencies_us);
    }
}

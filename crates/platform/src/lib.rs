//! The serverless platform simulator (the paper's OpenFaaS + k3s stand-in).
//!
//! Reproduces the evaluation protocol of §5.1 end to end:
//!
//! - **closed-loop runs** ([`run_closed_loop`]): 500 invocations of one
//!   function, workers evicted every 1/4/20 requests, under one of the
//!   orchestration policies — the data behind Figures 4–5 and Tables 4–5;
//! - **trace-driven runs** ([`run_trace`]): replay of an Azure-like
//!   arrival trace with idle-timeout eviction — the data behind Figure 6;
//! - **latency accounting**: the end-to-end latency a client observes is
//!   the function's execution time (including lazy initialization on cold
//!   first requests, JIT pauses, interference, deopts, and IO). Worker
//!   provisioning — policy decision, snapshot download, CRIU restore or
//!   cold boot — happens *off the critical path*, before the next request
//!   arrives, exactly as §5.3 argues ("network and disk operations ... do
//!   not impact user-perceived latency"); its cost is still fully
//!   accounted in [`RunResult`] for Figure 7 and the cost analysis;
//! - **IO-state staleness**: a restored process re-establishes external
//!   connections lazily, briefly inflating IO-bound requests after a
//!   restore — the mechanism behind the paper's Uploader regression
//!   (see [`stale::IoStaleModel`]);
//! - **restore strategies**: [`RunConfig::with_restore`] selects how
//!   snapshot memory materializes — eager (the paper's behaviour), lazy
//!   map-on-fault, or REAP-style record & prefetch; per-restore fault and
//!   prefetch statistics surface in [`RunResult::restore_infos`];
//! - **production-scale replay** ([`run_production`]): streams a
//!   multi-hour Poisson/burst arrival process (`TraceSpec::production`)
//!   through the platform with O(workers) memory, aggregating latency into
//!   a log-bucketed histogram instead of per-invocation vectors — the
//!   driver behind `results/BENCH_kernel.json`;
//! - **kernel selection** ([`RunConfig::with_kernel`]): every runner
//!   drives its future-event list through [`KernelKind`] — the reference
//!   binary heap or the O(1) hierarchical timer wheel — with byte-identical
//!   results under either;
//! - **cluster mode** ([`run_cluster`]): the closed loop on an N-node
//!   cluster behind a deterministic consistent-hash gateway, with
//!   load-aware spillover, per-node snapshot residency and Table 5
//!   cross-node transfer pricing; `nodes = 1` is pinned byte-identical
//!   to [`run_closed_loop`];
//! - **predictive provisioning** ([`RunConfig::with_provision`]): a
//!   `pronghorn-forecast` [`ProvisionPolicy`] running alongside the
//!   reactive policy — arrival forecasts drive *pre-restores* that warm
//!   (and background-hydrate) a worker ahead of predicted bursts, with
//!   keep-alive expiry and [`ProvisionStats`] accounting;
//!   [`ProvisionPolicy::Disabled`] is pinned byte-identical to runs
//!   predating the knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod fleet;
pub mod partitioned;
pub mod result;
pub mod runner;
pub mod stale;
pub mod worker;

pub use cluster::{run_cluster, ClusterRunResult, NodeBreakdown};
pub use config::RunConfig;
pub use fleet::{run_fleet, FleetConfig};
pub use partitioned::run_partitioned;
pub use pronghorn_cluster::{ClusterSpec, LocalityStats, PlacementPolicy, RoutingPolicy};
pub use pronghorn_forecast::{ForecasterKind, ProvisionPolicy, ProvisionStats};
pub use pronghorn_restore::{RestoreInfo, RestoreStrategy};
pub use pronghorn_sim::KernelKind;
pub use pronghorn_store::{CacheConfig, StoragePolicy, StorageStats};
pub use result::{ProvisionKind, RunResult};
pub use runner::{
    run_closed_loop, run_production, run_trace, run_trace_with_history, ProductionStats,
};
pub use stale::IoStaleModel;
pub use worker::Worker;

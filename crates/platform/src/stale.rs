//! Restored-process IO staleness — the Uploader-regression mechanism.
//!
//! A process restored from a CRIU image resumes with the *frozen* external
//! state of the checkpointed process: TCP connections point at sockets
//! that no longer exist, DNS caches and connection pools are stale, and
//! all of it is re-established lazily on first use. A cold-started process
//! instead sets connections up as part of its (already-charged) lazy
//! initialization.
//!
//! For compute-bound functions the effect is invisible (no IO to slow
//! down). For an almost-purely-IO function like Uploader it is the whole
//! story: restores buy nothing (the native-library IO path is not
//! JIT-able) and pay the reconnect tax — and snapshots taken at *later*
//! request numbers carry more accumulated connection/buffer state, so the
//! request-centric policy's deep snapshots pay slightly more than the
//! state of the art's request-1 snapshot. That asymmetry reproduces §5.2:
//! "only one (Uploader) shows worse performance".

/// Parameters of the IO staleness penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoStaleModel {
    /// Base fraction of a request's IO time added right after a restore.
    pub base_frac: f64,
    /// Additional fraction at snapshot request number `W` (scales linearly
    /// with `request_number / w`): deeper snapshots hold more stale state.
    pub depth_frac: f64,
    /// Per-request decay: the penalty halves on each subsequent request as
    /// pools re-fill.
    pub decay: f64,
    /// Requests after a restore during which the penalty applies.
    pub horizon: u32,
}

impl Default for IoStaleModel {
    fn default() -> Self {
        IoStaleModel {
            base_frac: 0.08,
            depth_frac: 0.08,
            decay: 0.75,
            horizon: 4,
        }
    }
}

impl IoStaleModel {
    /// A disabled model (no penalty), for ablations.
    pub const fn disabled() -> Self {
        IoStaleModel {
            base_frac: 0.0,
            depth_frac: 0.0,
            decay: 0.5,
            horizon: 0,
        }
    }

    /// Penalty fraction of `io_us` for the `nth_since_restore`-th request
    /// (0-based) after restoring a snapshot taken at `snapshot_request` of
    /// a search space bounded by `w`.
    pub fn penalty_frac(&self, snapshot_request: u32, w: u32, nth_since_restore: u32) -> f64 {
        if nth_since_restore >= self.horizon {
            return 0.0;
        }
        let depth = if w == 0 {
            0.0
        } else {
            (f64::from(snapshot_request) / f64::from(w)).min(1.0)
        };
        let first = self.base_frac + self.depth_frac * depth;
        first * self.decay.powi(nth_since_restore as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_decays_and_expires() {
        let m = IoStaleModel::default();
        let p0 = m.penalty_frac(1, 100, 0);
        let p1 = m.penalty_frac(1, 100, 1);
        let p2 = m.penalty_frac(1, 100, 2);
        assert!(p0 > p1 && p1 > p2 && p2 > 0.0);
        assert_eq!(m.penalty_frac(1, 100, 4), 0.0);
    }

    #[test]
    fn deeper_snapshots_pay_more() {
        let m = IoStaleModel::default();
        let shallow = m.penalty_frac(1, 100, 0);
        let deep = m.penalty_frac(100, 100, 0);
        assert!(deep > shallow);
        assert!((deep - (m.base_frac + m.depth_frac)).abs() < 1e-12);
        // Depth saturates at w.
        assert_eq!(m.penalty_frac(500, 100, 0), deep);
    }

    #[test]
    fn disabled_model_is_zero_everywhere() {
        let m = IoStaleModel::disabled();
        assert_eq!(m.penalty_frac(50, 100, 0), 0.0);
    }

    #[test]
    fn zero_w_is_handled() {
        let m = IoStaleModel::default();
        assert!((m.penalty_frac(10, 0, 0) - m.base_frac).abs() < 1e-12);
    }
}

//! Restored-process IO staleness — the Uploader-regression mechanism.
//!
//! A process restored from a CRIU image resumes with the *frozen* external
//! state of the checkpointed process: TCP connections point at sockets
//! that no longer exist, DNS caches and connection pools are stale, and
//! all of it is re-established lazily on first use. A cold-started process
//! instead sets connections up as part of its (already-charged) lazy
//! initialization.
//!
//! For compute-bound functions the effect is invisible (no IO to slow
//! down). For an almost-purely-IO function like Uploader it is the whole
//! story: restores buy nothing (the native-library IO path is not
//! JIT-able) and pay the reconnect tax — and snapshots taken at *later*
//! request numbers carry more accumulated connection/buffer state, so the
//! request-centric policy's deep snapshots pay slightly more than the
//! state of the art's request-1 snapshot. That asymmetry reproduces §5.2:
//! "only one (Uploader) shows worse performance".
//!
//! **Node-local clocks.** The staleness horizon is per-*node*: a restore
//! that crossed a node boundary resumes IO state frozen at the origin
//! node's checkpoint time, which the receiving node's clock has since run
//! past — DNS TTLs lapse, idle connections get reaped. The original model
//! computed the penalty purely per-run, which is wrong the moment a
//! cluster restores snapshots across nodes; [`IoStaleModel::penalty_frac_aged`]
//! threads that node-clock age through as an additive term that is
//! *exactly zero* at age zero, so every single-node run stays
//! bit-identical.

use pronghorn_sim::SimDuration;

/// Parameters of the IO staleness penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoStaleModel {
    /// Base fraction of a request's IO time added right after a restore.
    pub base_frac: f64,
    /// Additional fraction at snapshot request number `W` (scales linearly
    /// with `request_number / w`): deeper snapshots hold more stale state.
    pub depth_frac: f64,
    /// Per-request decay: the penalty halves on each subsequent request as
    /// pools re-fill.
    pub decay: f64,
    /// Requests after a restore during which the penalty applies.
    pub horizon: u32,
    /// Extra penalty fraction per *minute* of cross-node snapshot age
    /// (see [`Self::penalty_frac_aged`]); the aged term is capped at
    /// [`Self::AGE_FRAC_CAP`] so pathological ages cannot dominate.
    pub age_frac_per_min: f64,
}

impl Default for IoStaleModel {
    fn default() -> Self {
        IoStaleModel {
            base_frac: 0.08,
            depth_frac: 0.08,
            decay: 0.75,
            horizon: 4,
            age_frac_per_min: 0.01,
        }
    }
}

impl IoStaleModel {
    /// A disabled model (no penalty), for ablations.
    pub const fn disabled() -> Self {
        IoStaleModel {
            base_frac: 0.0,
            depth_frac: 0.0,
            decay: 0.5,
            horizon: 0,
            age_frac_per_min: 0.0,
        }
    }

    /// Penalty fraction of `io_us` for the `nth_since_restore`-th request
    /// (0-based) after restoring a snapshot taken at `snapshot_request` of
    /// a search space bounded by `w`.
    pub fn penalty_frac(&self, snapshot_request: u32, w: u32, nth_since_restore: u32) -> f64 {
        if nth_since_restore >= self.horizon {
            return 0.0;
        }
        let depth = if w == 0 {
            0.0
        } else {
            (f64::from(snapshot_request) / f64::from(w)).min(1.0)
        };
        let first = self.base_frac + self.depth_frac * depth;
        first * self.decay.powi(nth_since_restore as i32)
    }

    /// Ceiling on the age-derived extra penalty fraction.
    pub const AGE_FRAC_CAP: f64 = 0.25;

    /// Like [`Self::penalty_frac`], but for a restore whose snapshot had
    /// aged `stale_age` across a node boundary (the receiving node's
    /// clock minus the origin node's checkpoint time). The age adds
    /// `age_frac_per_min × minutes` (capped at [`Self::AGE_FRAC_CAP`]),
    /// decaying per request like the base penalty.
    ///
    /// At `stale_age == 0` this returns the *exact* float
    /// [`Self::penalty_frac`] returns — local restores and whole
    /// single-node runs are bit-identical through this path.
    pub fn penalty_frac_aged(
        &self,
        snapshot_request: u32,
        w: u32,
        nth_since_restore: u32,
        stale_age: SimDuration,
    ) -> f64 {
        let base = self.penalty_frac(snapshot_request, w, nth_since_restore);
        if stale_age.is_zero() || nth_since_restore >= self.horizon {
            return base;
        }
        let minutes = stale_age.as_micros() as f64 / 60e6;
        let aged = (self.age_frac_per_min * minutes).min(Self::AGE_FRAC_CAP);
        base + aged * self.decay.powi(nth_since_restore as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_decays_and_expires() {
        let m = IoStaleModel::default();
        let p0 = m.penalty_frac(1, 100, 0);
        let p1 = m.penalty_frac(1, 100, 1);
        let p2 = m.penalty_frac(1, 100, 2);
        assert!(p0 > p1 && p1 > p2 && p2 > 0.0);
        assert_eq!(m.penalty_frac(1, 100, 4), 0.0);
    }

    #[test]
    fn deeper_snapshots_pay_more() {
        let m = IoStaleModel::default();
        let shallow = m.penalty_frac(1, 100, 0);
        let deep = m.penalty_frac(100, 100, 0);
        assert!(deep > shallow);
        assert!((deep - (m.base_frac + m.depth_frac)).abs() < 1e-12);
        // Depth saturates at w.
        assert_eq!(m.penalty_frac(500, 100, 0), deep);
    }

    #[test]
    fn disabled_model_is_zero_everywhere() {
        let m = IoStaleModel::disabled();
        assert_eq!(m.penalty_frac(50, 100, 0), 0.0);
    }

    #[test]
    fn zero_w_is_handled() {
        let m = IoStaleModel::default();
        assert!((m.penalty_frac(10, 0, 0) - m.base_frac).abs() < 1e-12);
    }

    #[test]
    fn zero_age_is_bit_identical_to_the_unaged_penalty() {
        let m = IoStaleModel::default();
        for nth in 0..6 {
            for req in [0u32, 1, 50, 100, 500] {
                let plain = m.penalty_frac(req, 100, nth);
                let aged = m.penalty_frac_aged(req, 100, nth, SimDuration::ZERO);
                // Exact bit equality, not approximate: the single-node
                // goldens ride on this.
                assert_eq!(plain.to_bits(), aged.to_bits(), "req {req} nth {nth}");
            }
        }
    }

    #[test]
    fn cross_node_age_raises_the_penalty_and_decays() {
        let m = IoStaleModel::default();
        let age = SimDuration::from_secs(120); // 2 minutes across nodes
        let local = m.penalty_frac(10, 100, 0);
        let remote = m.penalty_frac_aged(10, 100, 0, age);
        assert!(remote > local, "remote {remote} must exceed local {local}");
        assert!((remote - local - m.age_frac_per_min * 2.0).abs() < 1e-12);
        // The aged term decays per request like the base penalty...
        let r0 = m.penalty_frac_aged(10, 100, 0, age) - m.penalty_frac(10, 100, 0);
        let r1 = m.penalty_frac_aged(10, 100, 1, age) - m.penalty_frac(10, 100, 1);
        assert!(r1 < r0 && r1 > 0.0);
        // ...and expires at the horizon with the rest of the model.
        assert_eq!(m.penalty_frac_aged(10, 100, m.horizon, age), 0.0);
    }

    #[test]
    fn aged_term_is_capped() {
        let m = IoStaleModel::default();
        let ancient = SimDuration::from_secs(3600 * 24);
        let p = m.penalty_frac_aged(10, 100, 0, ancient);
        assert!((p - m.penalty_frac(10, 100, 0) - IoStaleModel::AGE_FRAC_CAP).abs() < 1e-12);
    }
}

//! Property-based tests for the JIT runtime simulator.

#![forbid(unsafe_code)]

use pronghorn_checkpoint::codec::{Decoder, Encoder};
use pronghorn_checkpoint::Checkpointable;
use pronghorn_jit::{MethodProfile, MethodWork, RequestWork, Runtime, RuntimeProfile, Tier};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn methods_strategy() -> impl Strategy<Value = Vec<MethodProfile>> {
    prop::collection::vec((1.0f64..200.0, 1.2f64..4.0, 1.0f64..8.0, 0.0f64..1.0), 1..6).prop_map(
        |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (calls, t1, t2_mult, spec))| {
                    MethodProfile::new(format!("m{i}"))
                        .calls_per_request(calls)
                        .tier_speedups(t1, t1 * t2_mult)
                        .speculation(spec)
                })
                .collect()
        },
    )
}

fn work_for(methods: &[MethodProfile], units: f64, novelty: f64) -> RequestWork {
    RequestWork::new(
        methods
            .iter()
            .enumerate()
            .map(|(i, m)| MethodWork {
                method: i,
                units,
                calls: m.calls,
            })
            .collect(),
    )
    .us_per_unit(2.0)
    .novelty(novelty)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Execution latencies are always positive and finite, and the request
    /// counter advances by exactly one per execution.
    #[test]
    fn execution_is_finite_and_counted(
        methods in methods_strategy(),
        seed in any::<u64>(),
        units in 1.0f64..5_000.0,
        novelty in 0.0f64..1.0,
        n in 1usize..300,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (mut rt, init) = Runtime::cold_start(RuntimeProfile::jvm(), methods.clone(), &mut rng);
        prop_assert!(init.as_micros() > 0);
        let work = work_for(&methods, units, novelty);
        for i in 0..n {
            let b = rt.execute(&work, &mut rng);
            prop_assert!(b.total_us().is_finite());
            prop_assert!(b.total_us() > 0.0);
            prop_assert!(b.compute_us >= 0.0 && b.deopt_pause_us >= 0.0);
            prop_assert_eq!(rt.requests_executed(), (i + 1) as u64);
        }
    }

    /// Snapshot/restore is lossless at any point in the warm-up, for any
    /// profile: the restored runtime equals the original field-for-field.
    #[test]
    fn state_round_trips_at_any_point(
        methods in methods_strategy(),
        seed in any::<u64>(),
        warmup in 0usize..400,
        pypy in any::<bool>(),
    ) {
        let profile = if pypy { RuntimeProfile::pypy() } else { RuntimeProfile::jvm() };
        let mut rng = SmallRng::seed_from_u64(seed);
        let (mut rt, _) = Runtime::cold_start(profile, methods.clone(), &mut rng);
        let work = work_for(&methods, 100.0, 0.3);
        for _ in 0..warmup {
            rt.execute(&work, &mut rng);
        }
        let mut enc = Encoder::new();
        rt.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = Runtime::decode_state(&mut dec).unwrap();
        prop_assert!(dec.finish().is_ok());
        prop_assert_eq!(&restored, &rt);
        prop_assert_eq!(restored.image_size_bytes(), rt.image_size_bytes());
    }

    /// Tiers only ever improve the per-request cost: a fully-warm runtime
    /// is never slower than the interpreted cost of the same work (modulo
    /// transient pauses, which we exclude by reading compute time only).
    #[test]
    fn compute_time_never_exceeds_interpreted_cost(
        methods in methods_strategy(),
        seed in any::<u64>(),
        units in 10.0f64..1_000.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), methods.clone(), &mut rng);
        let work = work_for(&methods, units, 0.0);
        let interp = work.interpreted_compute_us();
        for _ in 0..200 {
            let b = rt.execute(&work, &mut rng);
            prop_assert!(
                b.compute_us <= interp * 1.0000001,
                "compute {} exceeds interpreted {interp}",
                b.compute_us
            );
        }
    }

    /// The code cache never exceeds its capacity.
    #[test]
    fn code_cache_respects_capacity(
        methods in methods_strategy(),
        seed in any::<u64>(),
        cache_kb in 1u64..512,
    ) {
        let mut profile = RuntimeProfile::jvm();
        profile.code_cache_bytes = cache_kb * 1024;
        profile.tier1_threshold = 5;
        profile.tier2_threshold = 20;
        let mut rng = SmallRng::seed_from_u64(seed);
        let (mut rt, _) = Runtime::cold_start(profile, methods.clone(), &mut rng);
        let work = work_for(&methods, 50.0, 0.2);
        for _ in 0..300 {
            rt.execute(&work, &mut rng);
            prop_assert!(rt.code_cache_used() <= cache_kb * 1024);
        }
    }

    /// Identical seeds replay identical histories regardless of profile.
    #[test]
    fn execution_is_deterministic(
        methods in methods_strategy(),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (mut rt, _) =
                Runtime::cold_start(RuntimeProfile::pypy(), methods.clone(), &mut rng);
            let work = work_for(&methods, 100.0, 0.5);
            (0..100).map(|_| rt.execute(&work, &mut rng).total_us()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Tier ordering is monotone in optimization level for every method at
    /// every point (no method skips straight to a dead state).
    #[test]
    fn barred_methods_never_hold_tier2(
        methods in methods_strategy(),
        seed in any::<u64>(),
    ) {
        let mut profile = RuntimeProfile::jvm();
        profile.deopt_prob = 0.3;
        profile.max_deopt_rounds = 2;
        profile.tier1_threshold = 3;
        profile.tier2_threshold = 10;
        let mut rng = SmallRng::seed_from_u64(seed);
        let (mut rt, _) = Runtime::cold_start(profile, methods.clone(), &mut rng);
        let work = work_for(&methods, 50.0, 1.0);
        for _ in 0..400 {
            rt.execute(&work, &mut rng);
            for m in rt.method_states() {
                if m.barred_from_tier2 {
                    prop_assert!(m.tier < Tier::Tier2);
                }
            }
        }
    }
}

//! Tiered JIT language-runtime simulator.
//!
//! The paper's entire premise rests on the warm-up behaviour of production
//! JIT runtimes (§2): code starts interpreted and slow, hot methods are
//! compiled through tiers over hundreds-to-thousands of invocations,
//! speculative optimizations occasionally deoptimize, and compilation is
//! nondeterministic. No real JVM/PyPy is available here, so this crate
//! reproduces those dynamics *mechanistically* at method granularity:
//!
//! - every workload declares [`MethodProfile`]s: how often each method is
//!   called per request, what share of the work it executes, and how much
//!   each compilation tier speeds it up;
//! - a [`Runtime`] advances a per-method tier state machine
//!   (interpreter → tier 1 → tier 2) using invocation-count thresholds, so
//!   a method called once per request crosses a 2 000-call threshold at
//!   request 2 000 — the paper's Observation #2 emerges from mechanism;
//! - compilation either runs on background threads (HotSpot-style, with
//!   CPU interference while the queue is busy) or pauses execution inline
//!   (PyPy's tracing JIT);
//! - speculation can fail on novel inputs, deoptimizing methods back to the
//!   interpreter (Observation #3's non-monotonicity), and methods that
//!   deoptimize too often are barred from further optimization, exactly as
//!   §2 describes JIT blacklisting;
//! - the very first request after a *cold* start pays a large lazy
//!   initialization cost, which is why checkpointing after initialization
//!   but before the first invocation "results in inferior performance"
//!   (§5.1) — restoring a snapshot taken after requests skips it;
//! - the full runtime state is [`Checkpointable`]: snapshots capture tiers,
//!   counters, queues and the code cache, and restored runtimes continue
//!   optimizing from where the snapshot left off.
//!
//! [`Checkpointable`]: pronghorn_checkpoint::Checkpointable
//!
//! # Examples
//!
//! ```
//! use pronghorn_jit::{MethodProfile, Runtime, RuntimeProfile, RequestWork, MethodWork};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let methods = vec![MethodProfile::new("render").calls_per_request(3.0)];
//! let (mut rt, _init) = Runtime::cold_start(RuntimeProfile::jvm(), methods, &mut rng);
//! let work = RequestWork::new(vec![MethodWork { method: 0, units: 1000.0, calls: 3.0 }]);
//! let first = rt.execute(&work, &mut rng);
//! for _ in 0..5000 {
//!     rt.execute(&work, &mut rng);
//! }
//! let warm = rt.execute(&work, &mut rng);
//! assert!(warm.total_us() < first.total_us());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod method;
pub mod profile;
pub mod request;
pub mod runtime;
pub mod state;

pub use compile::{CompileJob, CompileQueue};
pub use method::{MethodState, Tier};
pub use profile::{MethodProfile, RuntimeKind, RuntimeProfile};
pub use request::{ExecutionBreakdown, MethodWork, RequestWork};
pub use runtime::Runtime;

//! Request descriptors and execution breakdowns.
//!
//! A workload turns one randomized input into a [`RequestWork`]: how many
//! work units each method must execute, how much un-JIT-able IO the request
//! performs, and how *novel* the input is relative to what the function has
//! seen (novelty drives speculation failures). The runtime turns that into
//! an [`ExecutionBreakdown`] of where the virtual time went.

/// Work one request assigns to one method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodWork {
    /// Index of the method in the runtime's method table.
    pub method: usize,
    /// Abstract work units the method executes for this request; one unit
    /// costs [`RequestWork::us_per_unit`] µs when interpreted.
    pub units: f64,
    /// Times the method is invoked by this request (profile-counter
    /// advance).
    pub calls: f64,
}

/// One request's execution demand.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestWork {
    /// Per-method work.
    pub entries: Vec<MethodWork>,
    /// Interpreted cost of one work unit, µs. Workloads calibrate this to
    /// land their first-request latency in the paper's observed range.
    pub us_per_unit: f64,
    /// IO/network time this request spends outside the runtime, µs —
    /// unaffected by JIT state (the mechanism behind the Uploader
    /// regression in §5.2).
    pub io_us: f64,
    /// How unusual this input is in `[0, 1]`; scales the probability that
    /// speculating methods deoptimize on this request.
    pub novelty: f64,
    /// The input-size factor this request was drawn with (1.0 = the base
    /// size). Carried so platforms can classify requests by input pattern
    /// (§6's workload/input-awareness).
    pub size_factor: f64,
}

impl RequestWork {
    /// Creates compute-only work with 1 µs/unit and zero novelty.
    pub fn new(entries: Vec<MethodWork>) -> Self {
        RequestWork {
            entries,
            us_per_unit: 1.0,
            io_us: 0.0,
            novelty: 0.0,
            size_factor: 1.0,
        }
    }

    /// Sets the interpreted cost per unit.
    pub fn us_per_unit(mut self, us: f64) -> Self {
        self.us_per_unit = us.max(0.0);
        self
    }

    /// Sets the IO time.
    pub fn io_us(mut self, us: f64) -> Self {
        self.io_us = us.max(0.0);
        self
    }

    /// Sets the size factor the request was drawn with.
    pub fn size_factor(mut self, factor: f64) -> Self {
        self.size_factor = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            1.0
        };
        self
    }

    /// Sets the novelty in `[0, 1]`.
    pub fn novelty(mut self, novelty: f64) -> Self {
        self.novelty = if novelty.is_nan() {
            0.0
        } else {
            novelty.clamp(0.0, 1.0)
        };
        self
    }

    /// Total interpreted compute cost of this request, µs.
    pub fn interpreted_compute_us(&self) -> f64 {
        self.entries.iter().map(|e| e.units).sum::<f64>() * self.us_per_unit
    }
}

/// Where one request's virtual time went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecutionBreakdown {
    /// Time running function code (tier-discounted), µs.
    pub compute_us: f64,
    /// IO/network time, µs.
    pub io_us: f64,
    /// Lazy initialization charged to a cold runtime's first request, µs.
    pub lazy_init_us: f64,
    /// Inline compilation pauses (tracing JIT) this request, µs.
    pub compile_pause_us: f64,
    /// Slowdown from background compiler CPU contention, µs.
    pub interference_us: f64,
    /// Deoptimization pauses this request, µs.
    pub deopt_pause_us: f64,
    /// Fixed runtime overhead, µs.
    pub overhead_us: f64,
}

impl ExecutionBreakdown {
    /// End-to-end execution time of the request, µs.
    pub fn total_us(&self) -> f64 {
        self.compute_us
            + self.io_us
            + self.lazy_init_us
            + self.compile_pause_us
            + self.interference_us
            + self.deopt_pause_us
            + self.overhead_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_inputs() {
        let w = RequestWork::new(vec![])
            .us_per_unit(-1.0)
            .io_us(-5.0)
            .novelty(7.0);
        assert_eq!(w.us_per_unit, 0.0);
        assert_eq!(w.io_us, 0.0);
        assert_eq!(w.novelty, 1.0);
        assert_eq!(RequestWork::new(vec![]).novelty(f64::NAN).novelty, 0.0);
    }

    #[test]
    fn interpreted_compute_sums_units() {
        let w = RequestWork::new(vec![
            MethodWork {
                method: 0,
                units: 100.0,
                calls: 1.0,
            },
            MethodWork {
                method: 1,
                units: 50.0,
                calls: 2.0,
            },
        ])
        .us_per_unit(2.0);
        assert_eq!(w.interpreted_compute_us(), 300.0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = ExecutionBreakdown {
            compute_us: 1.0,
            io_us: 2.0,
            lazy_init_us: 3.0,
            compile_pause_us: 4.0,
            interference_us: 5.0,
            deopt_pause_us: 6.0,
            overhead_us: 7.0,
        };
        assert_eq!(b.total_us(), 28.0);
        assert_eq!(ExecutionBreakdown::default().total_us(), 0.0);
    }
}

//! Static profiles: what a runtime is, and what a method looks like to it.
//!
//! [`RuntimeProfile`] parameterizes a runtime family. The two presets,
//! [`RuntimeProfile::jvm`] and [`RuntimeProfile::pypy`], are calibrated so
//! that the DynamicHTML workload converges around request ~2 500 on the JVM
//! and ~1 000 on PyPy with the latency reductions of Figure 1 (75.6% and
//! 33.3%), and so that snapshot images land in Table 4's size bands
//! (JVM ≈ 10–13 MB, PyPy ≈ 54–64 MB).

use self::codecheck::check_fraction;
use pronghorn_checkpoint::codec::{CodecError, Decoder, Encoder};

/// The runtime family a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// OpenJDK HotSpot-style: background tiered compilation (C1/C2).
    Jvm,
    /// PyPy-style: inline tracing JIT (execution pauses while tracing).
    PyPy,
}

impl RuntimeKind {
    /// Stable label used in snapshot metadata and result tables.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Jvm => "jvm",
            RuntimeKind::PyPy => "pypy",
        }
    }

    /// Parses a label written by [`Self::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "jvm" => Some(RuntimeKind::Jvm),
            "pypy" => Some(RuntimeKind::PyPy),
            _ => None,
        }
    }
}

/// Static description of one method of a serverless function.
///
/// Built with a fluent API:
///
/// ```
/// use pronghorn_jit::MethodProfile;
///
/// let m = MethodProfile::new("parse")
///     .calls_per_request(12.0)
///     .tier_speedups(3.0, 9.0)
///     .speculation(0.6);
/// assert_eq!(m.name, "parse");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MethodProfile {
    /// Method name (diagnostics and snapshots).
    pub name: String,
    /// Average times this method is invoked per function request; drives
    /// how fast its counters cross the compile thresholds.
    pub calls: f64,
    /// Speedup of tier-1 code over interpreted code (>= 1).
    pub tier1_speedup: f64,
    /// Speedup of tier-2 code over interpreted code (>= tier1).
    pub tier2_speedup: f64,
    /// Machine-code size produced by tier-1 compilation, bytes.
    pub tier1_code_bytes: u64,
    /// Machine-code size produced by tier-2 compilation, bytes.
    pub tier2_code_bytes: u64,
    /// How speculation-heavy tier-2 code for this method is, in `[0, 1]`:
    /// scales the probability that a novel input deoptimizes it.
    pub speculation: f64,
}

impl MethodProfile {
    /// Creates a profile with representative defaults.
    pub fn new(name: impl Into<String>) -> Self {
        MethodProfile {
            name: name.into(),
            calls: 1.0,
            tier1_speedup: 3.0,
            tier2_speedup: 10.0,
            tier1_code_bytes: 24 * 1024,
            tier2_code_bytes: 96 * 1024,
            speculation: 0.5,
        }
    }

    /// Sets the average calls per request.
    pub fn calls_per_request(mut self, calls: f64) -> Self {
        self.calls = calls.max(0.0);
        self
    }

    /// Sets tier speedups (tier 2 is clamped to at least tier 1).
    pub fn tier_speedups(mut self, tier1: f64, tier2: f64) -> Self {
        self.tier1_speedup = tier1.max(1.0);
        self.tier2_speedup = tier2.max(self.tier1_speedup);
        self
    }

    /// Sets generated code sizes in bytes.
    pub fn code_bytes(mut self, tier1: u64, tier2: u64) -> Self {
        self.tier1_code_bytes = tier1;
        self.tier2_code_bytes = tier2;
        self
    }

    /// Sets the speculation sensitivity in `[0, 1]`.
    pub fn speculation(mut self, s: f64) -> Self {
        self.speculation = check_fraction(s);
        self
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_f64(self.calls);
        enc.put_f64(self.tier1_speedup);
        enc.put_f64(self.tier2_speedup);
        enc.put_u64(self.tier1_code_bytes);
        enc.put_u64(self.tier2_code_bytes);
        enc.put_f64(self.speculation);
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MethodProfile {
            name: dec.take_str()?.to_string(),
            calls: dec.take_f64()?,
            tier1_speedup: dec.take_f64()?,
            tier2_speedup: dec.take_f64()?,
            tier1_code_bytes: dec.take_u64()?,
            tier2_code_bytes: dec.take_u64()?,
            speculation: dec.take_f64()?,
        })
    }
}

/// Static description of a runtime family.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeProfile {
    /// Which family this is.
    pub kind: RuntimeKind,
    /// Process + interpreter boot cost on a cold start, µs (mean).
    pub cold_init_us: f64,
    /// Extra lazy-initialization cost folded into the *first* request a
    /// cold runtime serves (class loading, lazy interpreter structures),
    /// µs (mean). This is why snapshot-after-init underperforms
    /// snapshot-after-first-request (§5.1).
    pub lazy_init_us: f64,
    /// Relative jitter applied to init costs.
    pub init_jitter_rel: f64,
    /// Method invocation count that triggers tier-1 compilation.
    pub tier1_threshold: u64,
    /// Method invocation count that triggers tier-2 compilation.
    pub tier2_threshold: u64,
    /// Whether compilation runs on background threads (`true`, HotSpot) or
    /// pauses execution inline (`false`, PyPy tracing).
    pub background_compile: bool,
    /// Background compile capacity per request, in µs of compiler work the
    /// background threads retire while one request executes.
    pub compile_us_per_request: f64,
    /// Compiler work needed per kilobyte of generated code, µs/KiB.
    pub compile_us_per_code_kb: f64,
    /// Fractional execution slowdown while the compile queue is non-empty
    /// (compiler threads steal CPU from the request).
    pub compile_interference: f64,
    /// Baseline probability that one novel-input request deoptimizes a
    /// given speculating tier-2 method.
    pub deopt_prob: f64,
    /// Execution pause charged when a deoptimization fires, µs.
    pub deopt_pause_us: f64,
    /// Deoptimization rounds after which a method is barred from tier 2.
    pub max_deopt_rounds: u32,
    /// Fixed per-request runtime overhead (dispatch, GC amortization), µs.
    pub request_overhead_us: f64,
    /// Code-cache capacity, bytes; compilation stops when full (§2:
    /// "code cache space availability").
    pub code_cache_bytes: u64,
    /// Base (compressed) process-image size for snapshots, bytes.
    pub base_image_bytes: u64,
    /// Extra image bytes per byte of generated machine code (profile data,
    /// metadata; > 1 because images also carry profiling tables).
    pub image_bytes_per_code_byte: f64,
}

impl RuntimeProfile {
    /// HotSpot-JVM-like preset.
    pub fn jvm() -> Self {
        RuntimeProfile {
            kind: RuntimeKind::Jvm,
            cold_init_us: 420_000.0,
            lazy_init_us: 230_000.0,
            init_jitter_rel: 0.15,
            tier1_threshold: 250,
            tier2_threshold: 12_000,
            background_compile: true,
            compile_us_per_request: 550.0,
            compile_us_per_code_kb: 180.0,
            compile_interference: 0.22,
            deopt_prob: 0.012,
            deopt_pause_us: 900.0,
            max_deopt_rounds: 20,
            request_overhead_us: 130.0,
            code_cache_bytes: 48 * 1024 * 1024,
            base_image_bytes: 10 * 1024 * 1024,
            image_bytes_per_code_byte: 2.6,
        }
    }

    /// PyPy-like preset (inline tracing JIT).
    pub fn pypy() -> Self {
        RuntimeProfile {
            kind: RuntimeKind::PyPy,
            cold_init_us: 180_000.0,
            lazy_init_us: 60_000.0,
            init_jitter_rel: 0.15,
            tier1_threshold: 1_040, // PyPy's documented trace-hotness threshold is 1039
            tier2_threshold: 6_200,
            background_compile: false,
            compile_us_per_request: 0.0,
            compile_us_per_code_kb: 260.0,
            compile_interference: 0.0,
            deopt_prob: 0.02,
            deopt_pause_us: 1_400.0,
            max_deopt_rounds: 12,
            request_overhead_us: 260.0,
            code_cache_bytes: 96 * 1024 * 1024,
            base_image_bytes: 52 * 1024 * 1024,
            image_bytes_per_code_byte: 3.4,
        }
    }

    /// Preset for a runtime kind.
    pub fn for_kind(kind: RuntimeKind) -> Self {
        match kind {
            RuntimeKind::Jvm => RuntimeProfile::jvm(),
            RuntimeKind::PyPy => RuntimeProfile::pypy(),
        }
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.kind.label());
        enc.put_f64(self.cold_init_us);
        enc.put_f64(self.lazy_init_us);
        enc.put_f64(self.init_jitter_rel);
        enc.put_u64(self.tier1_threshold);
        enc.put_u64(self.tier2_threshold);
        enc.put_bool(self.background_compile);
        enc.put_f64(self.compile_us_per_request);
        enc.put_f64(self.compile_us_per_code_kb);
        enc.put_f64(self.compile_interference);
        enc.put_f64(self.deopt_prob);
        enc.put_f64(self.deopt_pause_us);
        enc.put_u32(self.max_deopt_rounds);
        enc.put_f64(self.request_overhead_us);
        enc.put_u64(self.code_cache_bytes);
        enc.put_u64(self.base_image_bytes);
        enc.put_f64(self.image_bytes_per_code_byte);
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let label = dec.take_str()?;
        let kind = RuntimeKind::from_label(label).ok_or(CodecError::InvalidTag {
            tag: label.as_bytes().first().copied().unwrap_or(0),
            context: "RuntimeKind",
        })?;
        Ok(RuntimeProfile {
            kind,
            cold_init_us: dec.take_f64()?,
            lazy_init_us: dec.take_f64()?,
            init_jitter_rel: dec.take_f64()?,
            tier1_threshold: dec.take_u64()?,
            tier2_threshold: dec.take_u64()?,
            background_compile: dec.take_bool()?,
            compile_us_per_request: dec.take_f64()?,
            compile_us_per_code_kb: dec.take_f64()?,
            compile_interference: dec.take_f64()?,
            deopt_prob: dec.take_f64()?,
            deopt_pause_us: dec.take_f64()?,
            max_deopt_rounds: dec.take_u32()?,
            request_overhead_us: dec.take_f64()?,
            code_cache_bytes: dec.take_u64()?,
            base_image_bytes: dec.take_u64()?,
            image_bytes_per_code_byte: dec.take_f64()?,
        })
    }
}

pub(crate) mod codecheck {
    /// Clamps a configuration fraction into `[0, 1]`, mapping NaN to 0.
    pub fn check_fraction(x: f64) -> f64 {
        if x.is_nan() {
            0.0
        } else {
            x.clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip() {
        for kind in [RuntimeKind::Jvm, RuntimeKind::PyPy] {
            assert_eq!(RuntimeKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(RuntimeKind::from_label("v8"), None);
    }

    #[test]
    fn method_builder_clamps_parameters() {
        let m = MethodProfile::new("m")
            .calls_per_request(-2.0)
            .tier_speedups(0.5, 0.1)
            .speculation(3.0);
        assert_eq!(m.calls, 0.0);
        assert_eq!(m.tier1_speedup, 1.0);
        assert_eq!(m.tier2_speedup, 1.0);
        assert_eq!(m.speculation, 1.0);
    }

    #[test]
    fn tier2_speedup_never_below_tier1() {
        let m = MethodProfile::new("m").tier_speedups(5.0, 2.0);
        assert_eq!(m.tier2_speedup, 5.0);
    }

    #[test]
    fn method_profile_round_trips_codec() {
        let m = MethodProfile::new("hot-loop")
            .calls_per_request(7.5)
            .tier_speedups(2.0, 14.0)
            .code_bytes(1000, 5000)
            .speculation(0.8);
        let mut enc = Encoder::new();
        m.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let decoded = MethodProfile::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn runtime_profile_round_trips_codec() {
        for profile in [RuntimeProfile::jvm(), RuntimeProfile::pypy()] {
            let mut enc = Encoder::new();
            profile.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let decoded = RuntimeProfile::decode(&mut dec).unwrap();
            dec.finish().unwrap();
            assert_eq!(decoded, profile);
        }
    }

    #[test]
    fn jvm_warms_slower_but_deeper_than_pypy() {
        let jvm = RuntimeProfile::jvm();
        let pypy = RuntimeProfile::pypy();
        // Figure 1: JVM converges around 2x the requests of PyPy.
        assert!(jvm.tier2_threshold > pypy.tier2_threshold);
        // And JVM snapshots are far smaller (Table 4).
        assert!(jvm.base_image_bytes < pypy.base_image_bytes);
        // PyPy traces inline; JVM compiles in the background.
        assert!(jvm.background_compile && !pypy.background_compile);
    }

    #[test]
    fn check_fraction_handles_nan() {
        assert_eq!(codecheck::check_fraction(f64::NAN), 0.0);
        assert_eq!(codecheck::check_fraction(0.5), 0.5);
    }
}

//! Snapshotting the runtime: the [`Checkpointable`] implementation.
//!
//! A snapshot must capture everything that makes a warm runtime warm: the
//! static profiles (so a snapshot is self-contained), every method's tier
//! and profile counters, the in-flight compile queue, the code cache
//! occupancy, the lineage request counter, and whether lazy initialization
//! has been paid. A restored runtime continues optimizing exactly where
//! the checkpointed one left off — the property the whole paper relies on.
//!
//! The modeled process-image size grows with installed machine code, which
//! is what makes later (more optimized) snapshots slightly larger, echoing
//! Table 4's per-benchmark size differences.

use crate::compile::CompileQueue;
use crate::method::MethodState;
use crate::profile::{MethodProfile, RuntimeProfile};
use crate::runtime::Runtime;
use pronghorn_checkpoint::codec::{CodecError, Decoder, Encoder};
use pronghorn_checkpoint::Checkpointable;

impl Checkpointable for Runtime {
    fn encode_state(&self, enc: &mut Encoder) {
        self.profile.encode(enc);
        enc.put_seq(&self.method_profiles, |e, m| m.encode(e));
        enc.put_seq(&self.methods, |e, m| m.encode(e));
        self.queue.encode(enc);
        enc.put_u64(self.code_cache_used);
        enc.put_u64(self.requests_executed);
        enc.put_bool(self.lazy_initialized);
        enc.put_u64(self.state_version);
    }

    fn decode_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let profile = RuntimeProfile::decode(dec)?;
        let method_profiles = dec.take_seq(8, MethodProfile::decode)?;
        let methods = dec.take_seq(8, MethodState::decode)?;
        if methods.len() != method_profiles.len() {
            return Err(CodecError::LengthOutOfBounds {
                declared: methods.len() as u64,
                remaining: method_profiles.len(),
            });
        }
        let queue = CompileQueue::decode(dec)?;
        Ok(Runtime {
            profile,
            method_profiles,
            methods,
            queue,
            code_cache_used: dec.take_u64()?,
            requests_executed: dec.take_u64()?,
            lazy_initialized: dec.take_bool()?,
            state_version: dec.take_u64()?,
        })
    }

    fn state_version(&self) -> Option<u64> {
        Some(self.state_version)
    }

    fn image_size_bytes(&self) -> u64 {
        let code = self.code_cache_used as f64 * self.profile.image_bytes_per_code_byte;
        let profiles = self.method_profiles.len() as u64 * 48 * 1024;
        self.profile.base_image_bytes + code as u64 + profiles
    }
}

#[cfg(test)]
mod tests {
    use crate::profile::{MethodProfile, RuntimeProfile};
    use crate::request::{MethodWork, RequestWork};
    use crate::runtime::Runtime;
    use pronghorn_checkpoint::codec::{Decoder, Encoder};
    use pronghorn_checkpoint::{Checkpointable, SimCriuEngine, SnapshotMeta};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn methods() -> Vec<MethodProfile> {
        vec![
            MethodProfile::new("a").calls_per_request(20.0),
            MethodProfile::new("b").calls_per_request(2.0),
        ]
    }

    fn work() -> RequestWork {
        RequestWork::new(vec![
            MethodWork {
                method: 0,
                units: 500.0,
                calls: 20.0,
            },
            MethodWork {
                method: 1,
                units: 500.0,
                calls: 2.0,
            },
        ])
    }

    fn warm_runtime(n: usize) -> Runtime {
        let mut rng = SmallRng::seed_from_u64(42);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), methods(), &mut rng);
        rt.execute_n(&work(), n, &mut rng);
        rt
    }

    #[test]
    fn state_round_trips_exactly() {
        let rt = warm_runtime(1_000);
        let mut enc = Encoder::new();
        rt.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = Runtime::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(restored, rt);
        assert_eq!(restored.requests_executed(), 1_000);
        assert!(restored.lazy_initialized());
    }

    #[test]
    fn restored_runtime_continues_from_snapshot() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let rt = warm_runtime(500);
        let tiers_before: Vec<_> = rt.method_states().iter().map(|m| m.tier).collect();
        let (snap, _) = engine.checkpoint(
            &mut rng,
            &rt,
            SnapshotMeta {
                function: "t".into(),
                request_number: 500,
                runtime: "jvm".into(),
            },
        );
        let (mut restored, _): (Runtime, _) = engine.restore(&mut rng, &snap).unwrap();
        let tiers_after: Vec<_> = restored.method_states().iter().map(|m| m.tier).collect();
        assert_eq!(tiers_before, tiers_after);
        // A restored runtime skips lazy init entirely.
        let first = restored.execute(&work(), &mut rng);
        assert_eq!(first.lazy_init_us, 0.0);
        assert_eq!(restored.requests_executed(), 501);
    }

    #[test]
    fn state_version_tracks_mutations() {
        let mut rt = warm_runtime(100);
        let v = rt.state_version();
        assert!(v > 0, "100 executed requests must have bumped the version");
        // No mutation, no bump: encoding is read-only.
        let mut enc = Encoder::new();
        rt.encode_state(&mut enc);
        assert_eq!(rt.state_version(), v);
        // Any further request bumps it.
        let mut rng = SmallRng::seed_from_u64(1);
        rt.execute(&work(), &mut rng);
        assert!(rt.state_version() > v);
        // Equal versions come with equal encoded bytes (round-trip).
        let mut enc2 = Encoder::new();
        rt.encode_state(&mut enc2);
        let mut enc3 = Encoder::new();
        rt.encode_state(&mut enc3);
        assert_eq!(enc2.as_bytes(), enc3.as_bytes());
    }

    #[test]
    fn image_grows_as_code_is_compiled() {
        let cold = warm_runtime(0);
        let warm = warm_runtime(20_000);
        assert!(warm.image_size_bytes() > cold.image_size_bytes());
    }

    #[test]
    fn jvm_image_lands_in_table4_band() {
        let warm = warm_runtime(20_000);
        let mb = warm.image_size_bytes() as f64 / (1024.0 * 1024.0);
        assert!((9.0..=16.0).contains(&mb), "jvm image {mb} MB");
    }

    #[test]
    fn pypy_image_lands_in_table4_band() {
        let mut rng = SmallRng::seed_from_u64(17);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::pypy(), methods(), &mut rng);
        rt.execute_n(&work(), 10_000, &mut rng);
        let mb = rt.image_size_bytes() as f64 / (1024.0 * 1024.0);
        assert!((50.0..=70.0).contains(&mb), "pypy image {mb} MB");
    }

    #[test]
    fn mismatched_profile_and_state_counts_rejected() {
        let rt = warm_runtime(10);
        let mut enc = Encoder::new();
        // Hand-encode with a truncated method-state list.
        rt.profile().encode(&mut enc);
        enc.put_seq(rt.method_profiles(), |e, m| m.encode(e));
        enc.put_seq(&rt.method_states()[..1], |e, m| m.encode(e));
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(Runtime::decode_state(&mut dec).is_err());
    }
}

//! Per-method dynamic state: the tier state machine.
//!
//! Each method independently walks `Interpreted → Tier1 → Tier2`, driven by
//! its invocation counter crossing the runtime's thresholds. Speculative
//! deoptimization sends it back to the interpreter with most of its profile
//! credit retained (re-optimization is faster than first-time optimization,
//! as §2 describes), and too many deopt rounds bar the method from tier 2
//! permanently — the paper's "internal thresholds ... that, once hit, may
//! prevent the method from ever being selected for optimization".

use pronghorn_checkpoint::codec::{CodecError, Decoder, Encoder};

/// Compilation tier of a method's executable code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Executed by the interpreter.
    Interpreted,
    /// Quick compile (HotSpot C1 / first PyPy trace).
    Tier1,
    /// Fully optimizing compile (HotSpot C2 / refined trace).
    Tier2,
}

impl Tier {
    fn tag(self) -> u8 {
        match self {
            Tier::Interpreted => 0,
            Tier::Tier1 => 1,
            Tier::Tier2 => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(Tier::Interpreted),
            1 => Ok(Tier::Tier1),
            2 => Ok(Tier::Tier2),
            tag => Err(CodecError::InvalidTag {
                tag,
                context: "Tier",
            }),
        }
    }
}

/// Dynamic JIT state of one method.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodState {
    /// Currently installed code tier.
    pub tier: Tier,
    /// Accumulated invocation count (the profile counter).
    pub invocations: f64,
    /// Tier of a compile currently queued or in progress, if any.
    pub inflight: Option<Tier>,
    /// Number of deoptimization rounds this method has been through.
    pub deopt_rounds: u32,
    /// Whether the runtime gave up promoting this method to tier 2.
    pub barred_from_tier2: bool,
}

impl Default for MethodState {
    fn default() -> Self {
        MethodState {
            tier: Tier::Interpreted,
            invocations: 0.0,
            inflight: None,
            deopt_rounds: 0,
            barred_from_tier2: false,
        }
    }
}

impl MethodState {
    /// Creates fresh interpreter-only state.
    pub fn new() -> Self {
        MethodState::default()
    }

    /// The tier this method should be compiled to next, if its counter has
    /// crossed a threshold and no compile is already in flight.
    pub fn pending_promotion(&self, tier1_threshold: u64, tier2_threshold: u64) -> Option<Tier> {
        if self.inflight.is_some() {
            return None;
        }
        match self.tier {
            Tier::Interpreted if self.invocations >= tier1_threshold as f64 => Some(Tier::Tier1),
            Tier::Tier1
                if !self.barred_from_tier2 && self.invocations >= tier2_threshold as f64 =>
            {
                Some(Tier::Tier2)
            }
            _ => None,
        }
    }

    /// Installs compiled code of `tier`, clearing the in-flight marker.
    pub fn install(&mut self, tier: Tier) {
        debug_assert!(tier > Tier::Interpreted);
        self.tier = tier;
        self.inflight = None;
    }

    /// Applies a speculative deoptimization: back to the interpreter, one
    /// more deopt round; past `max_deopt_rounds` the method is barred from
    /// tier 2. Profile data survives a deopt almost intact (the runtime
    /// "will gather additional profiling information before trying to
    /// re-optimize", §2) — 90% of the counter credit is retained, so
    /// re-promotion is quick but not instantaneous.
    pub fn deoptimize(&mut self, max_deopt_rounds: u32) {
        self.tier = Tier::Interpreted;
        self.inflight = None;
        self.invocations *= 0.9;
        self.deopt_rounds += 1;
        if self.deopt_rounds >= max_deopt_rounds {
            self.barred_from_tier2 = true;
        }
    }

    /// Serializes the state.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tier.tag());
        enc.put_f64(self.invocations);
        enc.put_option(&self.inflight, |e, t| e.put_u8(t.tag()));
        enc.put_u32(self.deopt_rounds);
        enc.put_bool(self.barred_from_tier2);
    }

    /// Deserializes state written by [`Self::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MethodState {
            tier: Tier::from_tag(dec.take_u8()?)?,
            invocations: dec.take_f64()?,
            inflight: dec.take_option(|d| Tier::from_tag(d.take_u8()?))?,
            deopt_rounds: dec.take_u32()?,
            barred_from_tier2: dec.take_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_interpreted() {
        let m = MethodState::new();
        assert_eq!(m.tier, Tier::Interpreted);
        assert_eq!(m.pending_promotion(100, 1000), None);
    }

    #[test]
    fn promotion_fires_at_thresholds() {
        let mut m = MethodState::new();
        m.invocations = 99.0;
        assert_eq!(m.pending_promotion(100, 1000), None);
        m.invocations = 100.0;
        assert_eq!(m.pending_promotion(100, 1000), Some(Tier::Tier1));
        m.install(Tier::Tier1);
        assert_eq!(m.pending_promotion(100, 1000), None);
        m.invocations = 1000.0;
        assert_eq!(m.pending_promotion(100, 1000), Some(Tier::Tier2));
    }

    #[test]
    fn inflight_suppresses_further_promotion() {
        let mut m = MethodState::new();
        m.invocations = 100.0;
        m.inflight = Some(Tier::Tier1);
        assert_eq!(m.pending_promotion(100, 1000), None);
        m.install(Tier::Tier1);
        assert_eq!(m.inflight, None);
        assert_eq!(m.tier, Tier::Tier1);
    }

    #[test]
    fn deopt_retains_most_profile_and_counts_rounds() {
        let mut m = MethodState::new();
        m.tier = Tier::Tier2;
        m.invocations = 2000.0;
        m.deoptimize(3);
        assert_eq!(m.tier, Tier::Interpreted);
        assert_eq!(m.invocations, 1800.0);
        assert_eq!(m.deopt_rounds, 1);
        assert!(!m.barred_from_tier2);
    }

    #[test]
    fn too_many_deopts_bar_tier2() {
        let mut m = MethodState::new();
        for _ in 0..3 {
            m.tier = Tier::Tier2;
            m.deoptimize(3);
        }
        assert!(m.barred_from_tier2);
        m.invocations = 1e9;
        m.tier = Tier::Tier1;
        // Tier-1 stays reachable; tier 2 does not.
        assert_eq!(m.pending_promotion(100, 1000), None);
    }

    #[test]
    fn barred_method_still_reaches_tier1() {
        let mut m = MethodState::new();
        m.barred_from_tier2 = true;
        m.invocations = 100.0;
        assert_eq!(m.pending_promotion(100, 1000), Some(Tier::Tier1));
    }

    #[test]
    fn state_round_trips_codec() {
        let mut m = MethodState::new();
        m.tier = Tier::Tier1;
        m.invocations = 123.5;
        m.inflight = Some(Tier::Tier2);
        m.deopt_rounds = 2;
        let mut enc = Encoder::new();
        m.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let decoded = MethodState::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn tier_ordering_matches_optimization_level() {
        assert!(Tier::Interpreted < Tier::Tier1);
        assert!(Tier::Tier1 < Tier::Tier2);
    }

    #[test]
    fn invalid_tier_tag_rejected() {
        assert!(Tier::from_tag(9).is_err());
    }
}

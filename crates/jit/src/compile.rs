//! The background compile queue.
//!
//! HotSpot compiles on background threads that contend with the
//! application for CPU (§2: "compilation is performed by background
//! threads that contend for resources"). The queue models that: each
//! enqueued job needs a fixed amount of compiler work (proportional to the
//! code it generates); every executed request retires a budget of that
//! work; jobs complete in FIFO order, possibly several per request; and
//! while the queue is non-empty, request execution is slowed by the
//! configured interference fraction.

use crate::method::Tier;
use pronghorn_checkpoint::codec::{CodecError, Decoder, Encoder};

/// One queued compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileJob {
    /// Index of the method being compiled.
    pub method: u32,
    /// Target tier.
    pub tier: Tier,
    /// Compiler work remaining, µs.
    pub remaining_us: f64,
}

impl CompileJob {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.method);
        enc.put_u8(match self.tier {
            Tier::Interpreted => 0,
            Tier::Tier1 => 1,
            Tier::Tier2 => 2,
        });
        enc.put_f64(self.remaining_us);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let method = dec.take_u32()?;
        let tier = match dec.take_u8()? {
            0 => Tier::Interpreted,
            1 => Tier::Tier1,
            2 => Tier::Tier2,
            tag => {
                return Err(CodecError::InvalidTag {
                    tag,
                    context: "CompileJob tier",
                })
            }
        };
        Ok(CompileJob {
            method,
            tier,
            remaining_us: dec.take_f64()?,
        })
    }
}

/// FIFO queue of background compilations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompileQueue {
    jobs: Vec<CompileJob>,
}

impl CompileQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CompileQueue::default()
    }

    /// Enqueues a compilation needing `work_us` of compiler time.
    pub fn enqueue(&mut self, method: u32, tier: Tier, work_us: f64) {
        self.jobs.push(CompileJob {
            method,
            tier,
            remaining_us: work_us.max(0.0),
        });
    }

    /// Advances the queue by `budget_us` of compiler work, returning the
    /// `(method, tier)` pairs whose compilation completed, in order.
    pub fn advance(&mut self, budget_us: f64) -> Vec<(u32, Tier)> {
        let mut budget = budget_us.max(0.0);
        let mut completed = Vec::new();
        while let Some(job) = self.jobs.first_mut() {
            if budget <= 0.0 {
                break;
            }
            if job.remaining_us <= budget {
                budget -= job.remaining_us;
                completed.push((job.method, job.tier));
                self.jobs.remove(0);
            } else {
                job.remaining_us -= budget;
                budget = 0.0;
            }
        }
        completed
    }

    /// Whether any compilation is pending.
    pub fn is_busy(&self) -> bool {
        !self.jobs.is_empty()
    }

    /// Number of pending jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Pending jobs, front first.
    pub fn jobs(&self) -> &[CompileJob] {
        &self.jobs
    }

    /// Removes every pending job for `method` (used on deoptimization: the
    /// profile that justified the compile is gone).
    pub fn cancel_method(&mut self, method: u32) {
        self.jobs.retain(|j| j.method != method);
    }

    /// Serializes the queue.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(&self.jobs, |e, j| j.encode(e));
    }

    /// Deserializes a queue written by [`Self::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CompileQueue {
            jobs: dec.take_seq(13, CompileJob::decode)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_complete_in_fifo_order() {
        let mut q = CompileQueue::new();
        q.enqueue(0, Tier::Tier1, 100.0);
        q.enqueue(1, Tier::Tier1, 100.0);
        let done = q.advance(150.0);
        assert_eq!(done, vec![(0, Tier::Tier1)]);
        assert_eq!(q.len(), 1);
        let done = q.advance(50.0);
        assert_eq!(done, vec![(1, Tier::Tier1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn budget_spans_multiple_jobs() {
        let mut q = CompileQueue::new();
        for i in 0..3 {
            q.enqueue(i, Tier::Tier2, 10.0);
        }
        let done = q.advance(1000.0);
        assert_eq!(done.len(), 3);
        assert!(!q.is_busy());
    }

    #[test]
    fn partial_progress_is_retained() {
        let mut q = CompileQueue::new();
        q.enqueue(7, Tier::Tier1, 100.0);
        assert!(q.advance(40.0).is_empty());
        assert!((q.jobs()[0].remaining_us - 60.0).abs() < 1e-12);
        assert!(q.is_busy());
    }

    #[test]
    fn zero_or_negative_budget_is_noop() {
        let mut q = CompileQueue::new();
        q.enqueue(0, Tier::Tier1, 10.0);
        assert!(q.advance(0.0).is_empty());
        assert!(q.advance(-5.0).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_removes_all_jobs_for_method() {
        let mut q = CompileQueue::new();
        q.enqueue(0, Tier::Tier1, 10.0);
        q.enqueue(1, Tier::Tier1, 10.0);
        q.enqueue(0, Tier::Tier2, 10.0);
        q.cancel_method(0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.jobs()[0].method, 1);
    }

    #[test]
    fn queue_round_trips_codec() {
        let mut q = CompileQueue::new();
        q.enqueue(3, Tier::Tier2, 55.5);
        q.enqueue(9, Tier::Tier1, 10.0);
        q.advance(5.0);
        let mut enc = Encoder::new();
        q.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let decoded = CompileQueue::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn zero_work_job_completes_immediately() {
        let mut q = CompileQueue::new();
        q.enqueue(1, Tier::Tier1, 0.0);
        // Needs a strictly positive budget to be popped, then costs nothing.
        assert_eq!(q.advance(1.0), vec![(1, Tier::Tier1)]);
    }
}

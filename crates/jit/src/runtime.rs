//! The runtime: ties profiles, method states, and the compile queue into an
//! executable process.
//!
//! [`Runtime::execute`] is the heart of the simulator. For each request it:
//!
//! 1. charges lazy initialization if this is the first request a *cold*
//!    runtime serves;
//! 2. executes each method's work units at its current tier's cost;
//! 3. rolls speculation dice for optimized methods (novel inputs can
//!    deoptimize them — Observation #3);
//! 4. enqueues tier promotions whose thresholds were crossed, subject to
//!    code-cache capacity;
//! 5. advances the background compiler (or pays inline tracing pauses) and
//!    charges CPU interference while compilation is in flight.
//!
//! All stochastic draws come from the caller-provided RNG, so a worker's
//! execution is exactly reproducible from its RNG stream.

use crate::compile::CompileQueue;
use crate::method::{MethodState, Tier};
use crate::profile::{MethodProfile, RuntimeKind, RuntimeProfile};
use crate::request::{ExecutionBreakdown, RequestWork};
use pronghorn_checkpoint::cost::gaussian;
use pronghorn_sim::SimDuration;
use rand::Rng;

/// A simulated JIT language runtime hosting one serverless function.
#[derive(Debug, Clone, PartialEq)]
pub struct Runtime {
    pub(crate) profile: RuntimeProfile,
    pub(crate) method_profiles: Vec<MethodProfile>,
    pub(crate) methods: Vec<MethodState>,
    pub(crate) queue: CompileQueue,
    pub(crate) code_cache_used: u64,
    pub(crate) requests_executed: u64,
    pub(crate) lazy_initialized: bool,
    pub(crate) state_version: u64,
}

/// Samples `mean * (1 + N(0,1) * rel)`, floored at 20% of the mean.
fn jittered<R: Rng + ?Sized>(rng: &mut R, mean: f64, rel: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    (mean * (1.0 + gaussian(rng) * rel)).max(mean * 0.2)
}

impl Runtime {
    /// Boots a cold runtime, returning it and the boot cost (process spawn
    /// plus interpreter initialization).
    ///
    /// The first request this runtime executes will additionally pay the
    /// profile's lazy-initialization cost.
    pub fn cold_start<R: Rng + ?Sized>(
        profile: RuntimeProfile,
        method_profiles: Vec<MethodProfile>,
        rng: &mut R,
    ) -> (Self, SimDuration) {
        let init = jittered(rng, profile.cold_init_us, profile.init_jitter_rel);
        let methods = method_profiles.iter().map(|_| MethodState::new()).collect();
        (
            Runtime {
                profile,
                method_profiles,
                methods,
                queue: CompileQueue::new(),
                code_cache_used: 0,
                requests_executed: 0,
                lazy_initialized: false,
                state_version: 0,
            },
            SimDuration::from_micros_f64(init),
        )
    }

    /// The runtime family.
    pub fn kind(&self) -> RuntimeKind {
        self.profile.kind
    }

    /// The runtime profile.
    pub fn profile(&self) -> &RuntimeProfile {
        &self.profile
    }

    /// Total requests this runtime *lineage* has executed — survives
    /// checkpoint/restore, which is exactly what makes it the policy's
    /// request-number coordinate.
    pub fn requests_executed(&self) -> u64 {
        self.requests_executed
    }

    /// Whether lazy initialization has already been paid.
    pub fn lazy_initialized(&self) -> bool {
        self.lazy_initialized
    }

    /// Per-method dynamic states.
    pub fn method_states(&self) -> &[MethodState] {
        &self.methods
    }

    /// Per-method static profiles.
    pub fn method_profiles(&self) -> &[MethodProfile] {
        &self.method_profiles
    }

    /// Bytes of machine code currently installed.
    pub fn code_cache_used(&self) -> u64 {
        self.code_cache_used
    }

    /// Monotonic counter bumped on every checkpoint-visible mutation
    /// (request execution, tier promotions, deoptimizations, code-cache
    /// installs, compile-queue changes).
    ///
    /// Two observations with the same version are guaranteed to have
    /// byte-identical encoded state, which lets a checkpoint engine skip
    /// re-encoding entirely. The converse is *not* a guarantee across
    /// runtime instances: two different lineages can coincidentally share
    /// version numbers, so version-keyed caches must be invalidated
    /// whenever the underlying runtime instance is swapped.
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    /// Number of methods at the given tier.
    pub fn count_at_tier(&self, tier: Tier) -> usize {
        self.methods.iter().filter(|m| m.tier == tier).count()
    }

    /// The snapshot pages this request would touch, as ascending page
    /// indices into a `page_count`-page image of this runtime.
    ///
    /// This is the deterministic access-trace hook for page-granular lazy
    /// restore: a pure function of the runtime's checkpoint-visible state
    /// and the request's work — it consumes no RNG and mutates nothing,
    /// so the same seed always produces the same fault sequence. The
    /// model mirrors how a restored image is touched:
    ///
    /// - a handful of **base-region** pages (runtime text, never-written
    ///   data) are always touched, scaling gently with image size;
    /// - each worked method touches **heap pages** hashed from its index,
    ///   more of them at higher tiers (compiled code + profiling data
    ///   occupy more of the image);
    /// - the request's payload size selects a couple of **input-buffer**
    ///   pages from a quantized size bucket.
    pub fn page_access_trace(&self, work: &RequestWork, page_count: u32) -> Vec<u32> {
        use pronghorn_sim::hash::{fnv1a, mix64};
        if page_count == 0 {
            return Vec::new();
        }
        let base_pages = (page_count / 4).max(1).min(page_count);
        let mut touched = std::collections::BTreeSet::new();
        let always = base_pages.min(4 + page_count / 32).max(1);
        for p in 0..always {
            touched.insert(p);
        }
        let heap_pages = page_count - base_pages;
        if heap_pages > 0 {
            let salt = fnv1a(b"page-trace");
            for entry in &work.entries {
                let spread = match self.methods.get(entry.method).map(|m| m.tier) {
                    Some(Tier::Interpreted) | None => 1u64,
                    Some(Tier::Tier1) => 2,
                    Some(Tier::Tier2) => 3,
                };
                for k in 0..spread {
                    let h = mix64(salt ^ mix64(entry.method as u64) ^ mix64(k));
                    touched.insert(base_pages + (h % u64::from(heap_pages)) as u32);
                }
            }
            // Input buffers: two pages from a quantized size bucket.
            let bucket = (work.size_factor.clamp(0.0, 16.0) * 8.0).round() as u64;
            for k in 0..2u64 {
                let h = mix64(salt ^ mix64(0x1b0f ^ bucket) ^ mix64(k));
                touched.insert(base_pages + (h % u64::from(heap_pages)) as u32);
            }
        }
        touched.into_iter().collect()
    }

    fn installed_bytes(&self, method: usize, tier: Tier) -> u64 {
        let p = &self.method_profiles[method];
        match tier {
            Tier::Interpreted => 0,
            Tier::Tier1 => p.tier1_code_bytes,
            Tier::Tier2 => p.tier2_code_bytes,
        }
    }

    fn install(&mut self, method: usize, tier: Tier) {
        let old = self.installed_bytes(method, self.methods[method].tier);
        let new = self.installed_bytes(method, tier);
        self.code_cache_used = self.code_cache_used - old + new;
        self.methods[method].install(tier);
        self.state_version += 1;
    }

    fn compile_work_us<R: Rng + ?Sized>(&self, rng: &mut R, method: usize, tier: Tier) -> f64 {
        let kb = self.installed_bytes(method, tier) as f64 / 1024.0;
        jittered(rng, kb * self.profile.compile_us_per_code_kb, 0.25)
    }

    /// Executes one request, mutating JIT state and returning the latency
    /// breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `work` references a method index outside this runtime's
    /// method table — a workload/runtime wiring bug, not a runtime
    /// condition.
    pub fn execute<R: Rng + ?Sized>(
        &mut self,
        work: &RequestWork,
        rng: &mut R,
    ) -> ExecutionBreakdown {
        for entry in &work.entries {
            assert!(
                entry.method < self.methods.len(),
                "request references method {} but runtime has {}",
                entry.method,
                self.methods.len()
            );
        }

        let mut breakdown = ExecutionBreakdown {
            io_us: work.io_us,
            overhead_us: jittered(rng, self.profile.request_overhead_us, 0.10),
            ..ExecutionBreakdown::default()
        };

        // 1. Lazy initialization on the first request of a cold runtime.
        if !self.lazy_initialized {
            breakdown.lazy_init_us =
                jittered(rng, self.profile.lazy_init_us, self.profile.init_jitter_rel);
            self.lazy_initialized = true;
        }

        // 2. Execute method work at current tiers; advance profile counters.
        for entry in &work.entries {
            let tier = self.methods[entry.method].tier;
            let prof = &self.method_profiles[entry.method];
            let discount = match tier {
                Tier::Interpreted => 1.0,
                Tier::Tier1 => 1.0 / prof.tier1_speedup,
                Tier::Tier2 => 1.0 / prof.tier2_speedup,
            };
            breakdown.compute_us += entry.units * work.us_per_unit * discount;
            self.methods[entry.method].invocations += entry.calls;
        }

        // 3. Speculation checks for optimized methods touched this request.
        for entry in &work.entries {
            let idx = entry.method;
            if self.methods[idx].tier != Tier::Tier2 {
                continue;
            }
            let spec = self.method_profiles[idx].speculation;
            // Each recompilation covers more paths, so speculation failures
            // become rarer after every deopt round (§2: re-optimized code
            // "cover[s] more code paths").
            let robustness = 0.35f64.powi(self.methods[idx].deopt_rounds.min(12) as i32);
            let p = self.profile.deopt_prob * spec * (0.25 + 0.75 * work.novelty) * robustness;
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let old = self.installed_bytes(idx, self.methods[idx].tier);
                self.code_cache_used -= old;
                self.methods[idx].deoptimize(self.profile.max_deopt_rounds);
                self.queue.cancel_method(idx as u32);
                self.state_version += 1;
                breakdown.deopt_pause_us += jittered(rng, self.profile.deopt_pause_us, 0.3);
            }
        }

        // 4. Tier promotions whose thresholds were crossed.
        for entry in &work.entries {
            let idx = entry.method;
            let pending = self.methods[idx]
                .pending_promotion(self.profile.tier1_threshold, self.profile.tier2_threshold);
            let Some(tier) = pending else { continue };
            // Code-cache admission: skip compilation if the new code would
            // not fit (§2: "code cache space availability").
            let old = self.installed_bytes(idx, self.methods[idx].tier);
            let new = self.installed_bytes(idx, tier);
            if self.code_cache_used - old + new > self.profile.code_cache_bytes {
                continue;
            }
            let work_us = self.compile_work_us(rng, idx, tier);
            if self.profile.background_compile {
                self.methods[idx].inflight = Some(tier);
                self.queue.enqueue(idx as u32, tier, work_us);
                self.state_version += 1;
            } else {
                // Tracing JIT: the request pauses while the trace compiles.
                breakdown.compile_pause_us += work_us;
                self.install(idx, tier);
            }
        }

        // 5. Background compiler progress and CPU interference.
        if self.profile.background_compile && self.queue.is_busy() {
            breakdown.interference_us =
                (breakdown.compute_us + breakdown.overhead_us) * self.profile.compile_interference;
            let budget = jittered(rng, self.profile.compile_us_per_request, 0.25);
            for (method, tier) in self.queue.advance(budget) {
                let idx = method as usize;
                // Re-check capacity at install time: other methods may have
                // filled the cache since this job was admitted. A compile
                // that no longer fits is discarded, as real code caches do.
                let old = self.installed_bytes(idx, self.methods[idx].tier);
                let new = self.installed_bytes(idx, tier);
                if self.code_cache_used - old + new > self.profile.code_cache_bytes {
                    self.methods[idx].inflight = None;
                    self.state_version += 1;
                    continue;
                }
                self.install(idx, tier);
            }
        }

        // Invocation counters and the lineage request count advanced, so
        // the encoded state is guaranteed different from before this call.
        self.requests_executed += 1;
        self.state_version += 1;
        breakdown
    }

    /// Runs `n` identical requests, returning total latencies — a test and
    /// calibration convenience.
    pub fn execute_n<R: Rng + ?Sized>(
        &mut self,
        work: &RequestWork,
        n: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..n).map(|_| self.execute(work, rng).total_us()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MethodWork;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn simple_methods() -> Vec<MethodProfile> {
        vec![
            MethodProfile::new("hot")
                .calls_per_request(10.0)
                .tier_speedups(3.0, 12.0),
            MethodProfile::new("warm")
                .calls_per_request(1.0)
                .tier_speedups(2.0, 6.0),
        ]
    }

    fn work() -> RequestWork {
        RequestWork::new(vec![
            MethodWork {
                method: 0,
                units: 2_000.0,
                calls: 10.0,
            },
            MethodWork {
                method: 1,
                units: 1_000.0,
                calls: 1.0,
            },
        ])
    }

    #[test]
    fn cold_start_charges_init() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (rt, init) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        assert!(init > SimDuration::from_millis(100));
        assert!(!rt.lazy_initialized());
        assert_eq!(rt.requests_executed(), 0);
    }

    #[test]
    fn first_request_pays_lazy_init_once() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        let first = rt.execute(&work(), &mut rng);
        assert!(first.lazy_init_us > 0.0);
        let second = rt.execute(&work(), &mut rng);
        assert_eq!(second.lazy_init_us, 0.0);
        assert!(first.total_us() > second.total_us());
    }

    #[test]
    fn warm_runtime_is_much_faster_than_cold() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        let lat = rt.execute_n(&work(), 20_000, &mut rng);
        let early: f64 = lat[1..21].iter().sum::<f64>() / 20.0;
        let late: f64 = lat[lat.len() - 20..].iter().sum::<f64>() / 20.0;
        // Observation #1: runtime optimizations are highly effective.
        assert!(
            late < early * 0.45,
            "expected ≥55% reduction, early={early} late={late}"
        );
    }

    #[test]
    fn hot_methods_reach_tier2_eventually() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        rt.execute_n(&work(), 20_000, &mut rng);
        assert!(rt.count_at_tier(Tier::Tier2) >= 1);
        assert!(rt.code_cache_used() > 0);
    }

    #[test]
    fn page_trace_is_deterministic_and_sorted() {
        let mut rng = SmallRng::seed_from_u64(11);
        let (rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        let a = rt.page_access_trace(&work(), 48);
        let b = rt.page_access_trace(&work(), 48);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "{a:?}");
        assert!(a.iter().all(|&p| p < 48));
        assert!(!a.is_empty());
        // A small working set: well below the full image.
        assert!(a.len() < 48, "{a:?}");
        assert!(rt.page_access_trace(&work(), 0).is_empty());
    }

    #[test]
    fn page_trace_grows_with_tier_promotions() {
        let mut rng = SmallRng::seed_from_u64(12);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        let cold = rt.page_access_trace(&work(), 256);
        rt.execute_n(&work(), 20_000, &mut rng);
        let hot = rt.page_access_trace(&work(), 256);
        // Promoted methods spread over more heap pages.
        assert!(hot.len() >= cold.len(), "cold {cold:?} hot {hot:?}");
        assert_ne!(cold, hot);
    }

    #[test]
    fn convergence_takes_hundreds_of_requests() {
        // Observation #2: the second method (1 call/request) cannot reach
        // tier 1 before request ~250 on the JVM profile.
        let mut rng = SmallRng::seed_from_u64(5);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        rt.execute_n(&work(), 200, &mut rng);
        assert_eq!(rt.method_states()[1].tier, Tier::Interpreted);
        rt.execute_n(&work(), 2_000, &mut rng);
        assert!(rt.method_states()[1].tier > Tier::Interpreted);
    }

    #[test]
    fn pypy_pauses_inline_for_tracing() {
        let mut rng = SmallRng::seed_from_u64(6);
        let methods = vec![MethodProfile::new("loop").calls_per_request(50.0)];
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::pypy(), methods, &mut rng);
        let w = RequestWork::new(vec![MethodWork {
            method: 0,
            units: 3_000.0,
            calls: 50.0,
        }]);
        let mut saw_pause = false;
        for _ in 0..200 {
            let b = rt.execute(&w, &mut rng);
            if b.compile_pause_us > 0.0 {
                saw_pause = true;
            }
            assert_eq!(b.interference_us, 0.0, "tracing JIT has no bg threads");
        }
        assert!(saw_pause, "tracing pause never observed");
        assert!(rt.count_at_tier(Tier::Interpreted) == 0);
    }

    #[test]
    fn jvm_requests_see_interference_while_compiling() {
        let mut rng = SmallRng::seed_from_u64(7);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        let mut saw_interference = false;
        for _ in 0..2_000 {
            if rt.execute(&work(), &mut rng).interference_us > 0.0 {
                saw_interference = true;
                break;
            }
        }
        assert!(saw_interference);
    }

    #[test]
    fn novelty_induces_deopts() {
        let mut rng = SmallRng::seed_from_u64(8);
        let methods = vec![MethodProfile::new("spec")
            .calls_per_request(100.0)
            .speculation(1.0)];
        let mut profile = RuntimeProfile::jvm();
        profile.deopt_prob = 0.25;
        profile.tier1_threshold = 10;
        profile.tier2_threshold = 50;
        let (mut rt, _) = Runtime::cold_start(profile, methods, &mut rng);
        let w = RequestWork::new(vec![MethodWork {
            method: 0,
            units: 100.0,
            calls: 100.0,
        }])
        .novelty(1.0);
        let mut saw_deopt = false;
        for _ in 0..3_000 {
            if rt.execute(&w, &mut rng).deopt_pause_us > 0.0 {
                saw_deopt = true;
                break;
            }
        }
        assert!(saw_deopt);
        assert!(rt.method_states()[0].deopt_rounds >= 1);
    }

    #[test]
    fn repeated_deopts_bar_tier2_permanently() {
        let mut rng = SmallRng::seed_from_u64(9);
        let methods = vec![MethodProfile::new("spec")
            .calls_per_request(100.0)
            .speculation(1.0)];
        let mut profile = RuntimeProfile::jvm();
        profile.deopt_prob = 0.5;
        profile.tier1_threshold = 5;
        profile.tier2_threshold = 20;
        profile.max_deopt_rounds = 2;
        let (mut rt, _) = Runtime::cold_start(profile, methods, &mut rng);
        let w = RequestWork::new(vec![MethodWork {
            method: 0,
            units: 100.0,
            calls: 100.0,
        }])
        .novelty(1.0);
        rt.execute_n(&w, 5_000, &mut rng);
        let m = &rt.method_states()[0];
        assert!(m.barred_from_tier2);
        assert!(m.tier <= Tier::Tier1);
    }

    #[test]
    fn tiny_code_cache_blocks_compilation() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut profile = RuntimeProfile::jvm();
        profile.code_cache_bytes = 1; // nothing fits
        let (mut rt, _) = Runtime::cold_start(profile, simple_methods(), &mut rng);
        rt.execute_n(&work(), 3_000, &mut rng);
        assert_eq!(rt.count_at_tier(Tier::Interpreted), 2);
        assert_eq!(rt.code_cache_used(), 0);
    }

    #[test]
    fn identical_seeds_reproduce_execution() {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(11);
            let (mut rt, _) =
                Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
            rt.execute_n(&work(), 500, &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "references method")]
    fn out_of_range_method_panics() {
        let mut rng = SmallRng::seed_from_u64(12);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        let w = RequestWork::new(vec![MethodWork {
            method: 9,
            units: 1.0,
            calls: 1.0,
        }]);
        rt.execute(&w, &mut rng);
    }

    #[test]
    fn io_time_is_passed_through_unoptimized() {
        let mut rng = SmallRng::seed_from_u64(13);
        let (mut rt, _) = Runtime::cold_start(RuntimeProfile::jvm(), simple_methods(), &mut rng);
        let w = work().io_us(250_000.0);
        rt.execute_n(&w, 20_000, &mut rng);
        let b = rt.execute(&w, &mut rng);
        // IO is not JIT-able: it dominates and stays constant (§5.2's
        // Uploader effect).
        assert_eq!(b.io_us, 250_000.0);
        assert!(b.io_us > b.compute_us * 10.0);
    }
}

//! Overflow-safe accumulation for the byte-accounting counters.
//!
//! The Table 5 byte decomposition (`restore_bytes == nominal + remote`,
//! DESIGN.md §14) is computed from a handful of `u64` totals
//! (`bytes_transferred`, `remote_bytes`, `nominal_bytes_*`,
//! `replicated_bytes`, …) accumulated across millions of simulated
//! events. A bare `+=` on any of them wraps silently on overflow and
//! corrupts a headline number without failing a single test; pronglint
//! rule `byte-conservation` rejects such sites. This module is the
//! sanctioned alternative: [`checked_accumulate`] surfaces the overflow
//! as a typed [`CounterOverflow`] error, and [`saturating_accumulate`]
//! pins the counter at `u64::MAX` (a visibly absurd total) for the
//! event-loop paths that have no error channel.

use std::fmt;

/// Typed error: adding `delta` to `counter` would exceed `u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterOverflow {
    /// Name of the accounting counter that would wrap.
    pub counter: &'static str,
    /// The counter's value before the add.
    pub current: u64,
    /// The delta that did not fit.
    pub delta: u64,
}

impl fmt::Display for CounterOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "byte-accounting counter `{}` overflows u64: {} + {}",
            self.counter, self.current, self.delta
        )
    }
}

impl std::error::Error for CounterOverflow {}

/// Adds `delta` to `counter`, failing with a typed [`CounterOverflow`]
/// instead of wrapping. The counter is left untouched on failure.
pub fn checked_accumulate(
    name: &'static str,
    counter: &mut u64,
    delta: u64,
) -> Result<(), CounterOverflow> {
    match counter.checked_add(delta) {
        Some(next) => {
            *counter = next;
            Ok(())
        }
        None => Err(CounterOverflow {
            counter: name,
            current: *counter,
            delta,
        }),
    }
}

/// Adds `delta` to `counter`, pinning at `u64::MAX` on overflow — for
/// accumulation sites inside event loops that have no error channel. A
/// pinned ceiling is loud in any report; a wrapped counter looks
/// plausible. Debug builds additionally fail fast with the typed error.
pub fn saturating_accumulate(name: &'static str, counter: &mut u64, delta: u64) {
    if let Err(overflow) = checked_accumulate(name, counter, delta) {
        debug_assert!(false, "{overflow}");
        *counter = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_accumulates_and_reports_overflow() {
        let mut c = 40;
        assert!(checked_accumulate("remote_bytes", &mut c, 2).is_ok());
        assert_eq!(c, 42);
        let err = checked_accumulate("remote_bytes", &mut c, u64::MAX).unwrap_err();
        assert_eq!(c, 42, "counter untouched on overflow");
        assert_eq!(err.counter, "remote_bytes");
        assert_eq!(err.current, 42);
        assert_eq!(err.delta, u64::MAX);
        assert!(err.to_string().contains("remote_bytes"));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "overflows u64"))]
    fn saturating_pins_at_ceiling() {
        let mut c = u64::MAX - 1;
        saturating_accumulate("bytes_transferred", &mut c, 1);
        assert_eq!(c, u64::MAX);
        // Past the ceiling: release builds pin, debug builds fail fast.
        saturating_accumulate("bytes_transferred", &mut c, 1);
        assert_eq!(c, u64::MAX);
    }
}

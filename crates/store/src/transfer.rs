//! Latency + bandwidth transfer-time model.
//!
//! Snapshot uploads and downloads traverse the cluster network. The model
//! is the classic `latency + size/bandwidth` first-order approximation;
//! defaults are calibrated so a ~55 MB PyPy snapshot (Table 4) transfers in
//! tens of milliseconds on an intra-cluster link, consistent with the
//! paper's observation that transfer costs stay off the critical path.

use pronghorn_sim::SimDuration;

/// First-order network transfer model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Fixed per-transfer latency (connection + request overhead), µs.
    pub latency_us: f64,
    /// Link bandwidth in bytes per microsecond (= MB/s / 1e6 * 1e6; 1.0
    /// means 1 MB per second is 1e6 µs... concretely: bytes/µs).
    pub bytes_per_us: f64,
}

impl TransferModel {
    /// Creates a model from a bandwidth expressed in gigabits per second.
    pub fn from_gbps(latency_us: f64, gbps: f64) -> Self {
        // 1 Gb/s = 125 MB/s = 125 bytes/µs.
        TransferModel {
            latency_us,
            bytes_per_us: gbps * 125.0,
        }
    }

    /// Virtual time to transfer `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.bytes_per_us <= 0.0 {
            return SimDuration::from_micros_f64(self.latency_us);
        }
        SimDuration::from_micros_f64(self.latency_us + bytes as f64 / self.bytes_per_us)
    }

    /// Virtual time to transfer `total_bytes` spread over `blobs` objects
    /// as one batched request: the fixed per-transfer latency is paid
    /// once for the whole batch instead of once per object — the reason a
    /// working-set prefetch beats faulting the same pages in one by one.
    /// An empty batch costs nothing.
    pub fn batched_transfer_time(&self, total_bytes: u64, blobs: usize) -> SimDuration {
        if blobs == 0 {
            return SimDuration::ZERO;
        }
        self.transfer_time(total_bytes)
    }

    /// Virtual time to download a delta chain of `links` blobs totalling
    /// `total_bytes`. Unlike a batched prefetch, the walk is inherently
    /// serial — each delta frame names its parent, so the next request
    /// can only be issued after the previous frame arrives — and the
    /// fixed per-transfer latency is paid once per link. A single link is
    /// exactly [`Self::transfer_time`].
    pub fn chained_transfer_time(&self, total_bytes: u64, links: usize) -> SimDuration {
        if links == 0 {
            return SimDuration::ZERO;
        }
        if self.bytes_per_us <= 0.0 {
            return SimDuration::from_micros_f64(self.latency_us * links as f64);
        }
        SimDuration::from_micros_f64(
            self.latency_us * links as f64 + total_bytes as f64 / self.bytes_per_us,
        )
    }
}

impl Default for TransferModel {
    /// A 10 Gb/s intra-cluster link with 200µs fixed overhead, typical of
    /// the paper's three-node VM cluster.
    fn default() -> Self {
        TransferModel::from_gbps(200.0, 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_costs_fixed_latency() {
        let m = TransferModel::default();
        assert_eq!(m.transfer_time(0).as_micros() as f64, m.latency_us);
    }

    #[test]
    fn gbps_conversion_is_correct() {
        let m = TransferModel::from_gbps(0.0, 8.0);
        // 8 Gb/s = 1000 bytes/µs => 1 MB in 1000µs.
        assert_eq!(m.transfer_time(1_000_000), SimDuration::from_millis(1));
    }

    #[test]
    fn fifty_five_mb_snapshot_transfers_in_tens_of_ms() {
        let m = TransferModel::default();
        let t = m.transfer_time(55 * 1024 * 1024);
        assert!(t > SimDuration::from_millis(10));
        assert!(t < SimDuration::from_millis(100));
    }

    #[test]
    fn degenerate_bandwidth_falls_back_to_latency() {
        let m = TransferModel {
            latency_us: 50.0,
            bytes_per_us: 0.0,
        };
        assert_eq!(m.transfer_time(1_000_000), SimDuration::from_micros(50));
    }

    #[test]
    fn transfer_time_is_monotone_in_size() {
        let m = TransferModel::default();
        assert!(m.transfer_time(2_000_000) > m.transfer_time(1_000_000));
    }

    #[test]
    fn batched_transfer_amortizes_fixed_latency() {
        let m = TransferModel::default();
        let one_by_one: SimDuration = (0..10).map(|_| m.transfer_time(100_000)).sum();
        let batched = m.batched_transfer_time(1_000_000, 10);
        assert_eq!(batched, m.transfer_time(1_000_000));
        assert!(batched < one_by_one);
    }

    #[test]
    fn empty_batch_is_free() {
        let m = TransferModel::default();
        assert_eq!(m.batched_transfer_time(0, 0), SimDuration::ZERO);
        assert!(m.batched_transfer_time(0, 1) > SimDuration::ZERO);
    }

    #[test]
    fn chained_transfer_pays_latency_per_link() {
        let m = TransferModel::default();
        assert_eq!(m.chained_transfer_time(0, 0), SimDuration::ZERO);
        // One link is exactly a plain transfer — the full-snapshot path
        // must not shift when expressed as a chain of length 1.
        assert_eq!(
            m.chained_transfer_time(5_000_000, 1),
            m.transfer_time(5_000_000)
        );
        // Longer chains pay the serial round trips.
        let single = m.chained_transfer_time(5_000_000, 1);
        let chain = m.chained_transfer_time(5_000_000, 4);
        assert_eq!((chain - single).as_micros() as f64, 3.0 * m.latency_us);
    }
}

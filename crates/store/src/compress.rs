//! Modeled page compression for snapshot transfers.
//!
//! Snapshots are highly compressible (zeroed heap tails, duplicated
//! class metadata), and real platforms ship them compressed: CRIU images
//! are routinely lz4/zstd-framed and the paper's Object Store (MinIO)
//! compresses at rest. The simulator models that trade without touching
//! payload bytes: a deterministic per-snapshot compression *ratio* is
//! sampled from the payload's content hash (so a benchmark's snapshots
//! compress consistently run over run), wire sizes shrink by that ratio,
//! and the CPU cost of (de)compression is charged at lz4-class
//! throughputs. Nothing here consumes simulation RNG — enabling
//! compression never perturbs a seeded run's random streams.
//!
//! Byte accounting stays in **nominal** units everywhere (the cluster
//! conservation law `restore_bytes == nominal_downloaded + remote_bytes`
//! is a nominal-unit identity); compression shows up as cheaper transfer
//! *times* plus the wire-byte counters in
//! [`StorageStats`](crate::tier::StorageStats).

use pronghorn_sim::hash::mix64;

/// Smallest modeled ratio, percent (1.30x).
pub const MIN_RATIO_PCT: u64 = 130;
/// Largest modeled ratio, percent (3.80x) — zstd-class on zero-heavy
/// runtime heaps.
pub const MAX_RATIO_PCT: u64 = 380;

/// Compression throughput, bytes/µs (~700 MB/s, lz4-class single core).
pub const COMPRESS_BYTES_PER_US: f64 = 700.0;
/// Decompression throughput, bytes/µs (~4 GB/s, lz4-class).
pub const DECOMPRESS_BYTES_PER_US: f64 = 4000.0;

/// The deterministic compression ratio for content hash `seed`, in
/// percent (130 = 1.30x). Pure in `seed`: the same payload always
/// compresses identically.
pub fn ratio_pct(seed: u64) -> u64 {
    let h = mix64(seed ^ 0xc0de_c0de_c0de_c0de);
    MIN_RATIO_PCT + h % (MAX_RATIO_PCT - MIN_RATIO_PCT + 1)
}

/// Wire bytes after compressing `nominal` bytes of content hash `seed`.
/// Integer arithmetic (no float round-trip), clamped to at least one
/// byte for non-empty input so a wire transfer is never free.
pub fn wire_bytes(nominal: u64, seed: u64) -> u64 {
    if nominal == 0 {
        return 0;
    }
    ((u128::from(nominal) * 100 / u128::from(ratio_pct(seed))) as u64).max(1)
}

/// CPU time to compress `nominal` bytes, µs.
pub fn compress_us(nominal: u64) -> f64 {
    nominal as f64 / COMPRESS_BYTES_PER_US
}

/// CPU time to decompress back to `nominal` bytes, µs.
pub fn decompress_us(nominal: u64) -> f64 {
    nominal as f64 / DECOMPRESS_BYTES_PER_US
}

/// A compressed blob's modeled sizes: what went in and what goes over
/// the wire. Round-tripping is exact by construction — decompression
/// restores `nominal` bytes, byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compressed {
    /// Original (decompressed) size, bytes.
    pub nominal: u64,
    /// Modeled on-the-wire size, bytes.
    pub wire: u64,
}

/// Compresses `nominal` bytes of content hash `seed`.
pub fn compress(nominal: u64, seed: u64) -> Compressed {
    Compressed {
        nominal,
        wire: wire_bytes(nominal, seed),
    }
}

/// Decompresses, returning exactly the original byte count.
pub fn decompress(c: &Compressed) -> u64 {
    c.nominal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_stays_in_band_and_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX, 0x9e37_79b9] {
            let r = ratio_pct(seed);
            assert!(
                (MIN_RATIO_PCT..=MAX_RATIO_PCT).contains(&r),
                "seed {seed}: {r}"
            );
            assert_eq!(r, ratio_pct(seed));
        }
    }

    #[test]
    fn wire_is_smaller_but_never_free() {
        assert_eq!(wire_bytes(0, 7), 0);
        assert_eq!(wire_bytes(1, 7), 1);
        let nominal = 55 << 20;
        let wire = wire_bytes(nominal, 7);
        assert!(wire < nominal);
        assert!(wire >= nominal * 100 / MAX_RATIO_PCT);
    }

    #[test]
    fn round_trip_is_exact() {
        for nominal in [0u64, 1, 4096, 55 << 20] {
            let c = compress(nominal, 0xdead_beef);
            assert_eq!(decompress(&c), nominal);
        }
    }

    #[test]
    fn cpu_costs_scale_linearly() {
        assert_eq!(compress_us(0), 0.0);
        assert_eq!(compress_us(700), 1.0);
        assert_eq!(decompress_us(4000), 1.0);
        // Decompression (restore path) is far cheaper than compression
        // (checkpoint path) — the asymmetry the placement relies on.
        assert!(decompress_us(1 << 20) < compress_us(1 << 20));
    }
}

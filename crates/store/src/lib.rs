//! Content-addressed object store — the paper's MinIO stand-in.
//!
//! Pronghorn keeps its snapshot pool in "a global Object Store ...
//! implemented with MinIO" (§3.1, §4): each worker uploads compressed
//! snapshots after a checkpoint and downloads the selected snapshot before
//! a restore. For the cost analysis (Table 5), the paper tracks the
//! *maximum storage used* and the *cumulative network bandwidth* consumed
//! by those transfers.
//!
//! This crate reproduces that component:
//!
//! - [`ObjectStore`]: a cloneable handle to a shared bucket/key blob map
//!   with integrity-checked reads;
//! - [`TransferModel`]: latency + bandwidth model converting object sizes
//!   into virtual transfer times;
//! - [`StoreStats`]: peak-storage and cumulative-transfer accounting, the
//!   inputs to Table 5.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use pronghorn_store::ObjectStore;
//!
//! let store = ObjectStore::new();
//! store.put("snapshots", "html/42", Bytes::from_static(b"blob")).unwrap();
//! let obj = store.get("snapshots", "html/42").unwrap();
//! assert_eq!(&obj[..], b"blob");
//! assert_eq!(store.stats().bytes_uploaded, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod chain;
pub mod compress;
pub mod store;
pub mod tier;
pub mod transfer;

pub use accounting::{checked_accumulate, saturating_accumulate, CounterOverflow};
pub use chain::{ChainIndex, ChainStats};
pub use store::{ObjectMeta, ObjectStore, StoreError, StoreStats};
pub use tier::{
    CacheConfig, CacheTier, DownloadPrice, DownloadRequest, ReadPrice, StoragePolicy, StorageStats,
    StorageTier,
};
pub use transfer::TransferModel;

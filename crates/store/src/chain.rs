//! Delta-chain bookkeeping for the snapshot pool.
//!
//! When checkpoints persist as page deltas, a snapshot's blob is only
//! usable together with every ancestor up to its chain root. That breaks
//! the pool's old "evict = delete the blob" rule: a parent the policy
//! evicts may still be referenced by a live descendant delta, so its
//! bytes must stay in the store (pinned) until the last descendant dies.
//! [`ChainIndex`] tracks that lineage DAG (a forest: every node has at
//! most one parent) and answers the two questions the orchestrator asks:
//!
//! - *is this snapshot still restorable?* — live ancestors all the way up;
//! - *which blobs may actually be deleted when a snapshot is evicted?* —
//!   the snapshot itself if nothing references it, plus any pinned
//!   ancestors it was the last holdout for (cascading frees).
//!
//! The index also accumulates [`ChainStats`], the chain-aware side of the
//! Table 5 transfer/storage accounting: how many roots vs. deltas were
//! stored, the nominal bytes each arm uploaded, and what composed
//! restores downloaded.

use std::collections::{BTreeMap, BTreeSet};

/// One snapshot's place in the delta forest.
#[derive(Debug, Clone)]
struct ChainNode {
    parent: Option<u64>,
    children: BTreeSet<u64>,
    depth: u32,
    /// The policy evicted this snapshot from the pool; the blob is kept
    /// only while `children` is non-empty (pinned).
    evicted: bool,
    /// Nominal bytes this snapshot's *stored* form occupies (dirty bytes
    /// for a delta, the full image for a root).
    stored_nominal: u64,
}

/// Chain-aware transfer and storage counters (Table 5 inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainStats {
    /// Full snapshots stored (chain roots).
    pub roots: u64,
    /// Delta snapshots stored.
    pub deltas: u64,
    /// Chains rebased into a fresh full snapshot after reaching depth K.
    pub consolidations: u64,
    /// Evictions whose blob deletion was deferred because a live delta
    /// child still referenced the snapshot.
    pub deferred_releases: u64,
    /// Pinned ancestor blobs freed later, when their last descendant died.
    pub cascade_frees: u64,
    /// Deepest delta chain observed (0 = only roots).
    pub max_depth: u32,
    /// Restores served by composing a delta chain.
    pub composed_restores: u64,
    /// Nominal bytes downloaded by composed restores (sum over the chain's
    /// stored forms — what `RestoreInfo.bytes_transferred` reports).
    pub composed_nominal_downloaded: u64,
    /// Nominal bytes uploaded by delta checkpoints (dirty bytes).
    pub delta_nominal_bytes: u64,
    /// Nominal bytes uploaded by full checkpoints.
    pub full_nominal_bytes: u64,
}

impl ChainStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &ChainStats) {
        self.roots += other.roots;
        self.deltas += other.deltas;
        self.consolidations += other.consolidations;
        self.deferred_releases += other.deferred_releases;
        self.cascade_frees += other.cascade_frees;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.composed_restores += other.composed_restores;
        self.composed_nominal_downloaded += other.composed_nominal_downloaded;
        self.delta_nominal_bytes += other.delta_nominal_bytes;
        self.full_nominal_bytes += other.full_nominal_bytes;
    }

    /// Nominal upload bytes saved by storing deltas instead of fulls is
    /// not directly recoverable here; callers compare
    /// `delta_nominal_bytes` against what fulls would have cost.
    pub fn stored_total_nominal(&self) -> u64 {
        self.delta_nominal_bytes + self.full_nominal_bytes
    }
}

/// Lineage index over snapshot ids (a forest of delta chains).
///
/// Keys are raw snapshot ids (`SnapshotId.0`) so the store layer stays
/// independent of the checkpoint crate's types.
#[derive(Debug, Clone, Default)]
pub struct ChainIndex {
    nodes: BTreeMap<u64, ChainNode>,
    stats: ChainStats,
}

impl ChainIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        ChainIndex::default()
    }

    /// Registers a full snapshot as a chain root.
    pub fn insert_root(&mut self, id: u64, stored_nominal: u64) {
        self.nodes.insert(
            id,
            ChainNode {
                parent: None,
                children: BTreeSet::new(),
                depth: 0,
                evicted: false,
                stored_nominal,
            },
        );
        self.stats.roots += 1;
        self.stats.full_nominal_bytes += stored_nominal;
    }

    /// Registers a delta snapshot under `parent`, returning the new
    /// node's depth, or `None` (and registering nothing) when the parent
    /// is unknown — callers must have checked [`Self::is_live`] and fall
    /// back to a full snapshot otherwise.
    pub fn insert_delta(&mut self, id: u64, parent: u64, stored_nominal: u64) -> Option<u32> {
        let depth = {
            let parent_node = self.nodes.get_mut(&parent)?;
            parent_node.children.insert(id);
            parent_node.depth + 1
        };
        self.nodes.insert(
            id,
            ChainNode {
                parent: Some(parent),
                children: BTreeSet::new(),
                depth,
                evicted: false,
                stored_nominal,
            },
        );
        self.stats.deltas += 1;
        self.stats.delta_nominal_bytes += stored_nominal;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        Some(depth)
    }

    /// Whether `id` is present and not evicted — i.e. still a valid delta
    /// parent for the next checkpoint of its lineage.
    pub fn is_live(&self, id: u64) -> bool {
        self.nodes.get(&id).is_some_and(|n| !n.evicted)
    }

    /// Chain depth of `id` (0 for roots), if known.
    pub fn depth(&self, id: u64) -> Option<u32> {
        self.nodes.get(&id).map(|n| n.depth)
    }

    /// Nominal bytes of `id`'s stored form, if known.
    pub fn stored_nominal(&self, id: u64) -> Option<u64> {
        self.nodes.get(&id).map(|n| n.stored_nominal)
    }

    /// The ids from `id` up to its chain root, inclusive, child-first —
    /// everything a composed restore must download.
    pub fn chain_to_root(&self, id: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            match self.nodes.get(&cur) {
                Some(node) => {
                    out.push(cur);
                    cursor = node.parent;
                }
                None => break,
            }
        }
        out
    }

    /// Number of blobs (chain length) a restore of `id` touches.
    pub fn chain_len(&self, id: u64) -> usize {
        self.chain_to_root(id).len().max(1)
    }

    /// Nominal bytes pinned in the store by evicted-but-referenced
    /// ancestors — counted into peak pool storage (Table 5), since the
    /// store genuinely still holds those bytes.
    pub fn pinned_nominal_bytes(&self) -> u64 {
        self.nodes
            .values()
            .filter(|n| n.evicted)
            .map(|n| n.stored_nominal)
            .sum()
    }

    /// Records that the policy evicted `id` from the pool. Returns the
    /// ids whose blobs may be deleted *now*: `id` itself when no live
    /// delta child references it, plus any already-evicted ancestors for
    /// which `id` was the last remaining descendant (cascading frees).
    /// When `id` still has children the deletion is deferred — the blob
    /// stays pinned until the last child is itself released.
    pub fn evict(&mut self, id: u64) -> Vec<u64> {
        let Some(node) = self.nodes.get_mut(&id) else {
            return Vec::new();
        };
        node.evicted = true;
        if !node.children.is_empty() {
            self.stats.deferred_releases += 1;
            return Vec::new();
        }
        let mut freed = Vec::new();
        let mut cursor = Some(id);
        let mut cascading = false;
        while let Some(cur) = cursor {
            let (remove, parent) = match self.nodes.get(&cur) {
                Some(n) if n.evicted && n.children.is_empty() => (true, n.parent),
                _ => (false, None),
            };
            if !remove {
                break;
            }
            self.nodes.remove(&cur);
            if let Some(p) = parent {
                if let Some(pn) = self.nodes.get_mut(&p) {
                    pn.children.remove(&cur);
                }
            }
            freed.push(cur);
            if cascading {
                self.stats.cascade_frees += 1;
            }
            cascading = true;
            cursor = parent;
        }
        freed
    }

    /// Records a chain consolidation (a depth-K lineage rebased onto a
    /// fresh full root).
    pub fn note_consolidation(&mut self) {
        self.stats.consolidations += 1;
    }

    /// Records a composed (multi-blob) restore downloading
    /// `nominal_bytes` across the chain.
    pub fn note_composed_restore(&mut self, nominal_bytes: u64) {
        self.stats.composed_restores += 1;
        self.stats.composed_nominal_downloaded += nominal_bytes;
    }

    /// The accumulated chain counters.
    pub fn stats(&self) -> &ChainStats {
        &self.stats
    }

    /// Live (non-evicted) node count, for tests and debugging.
    pub fn live_count(&self) -> usize {
        self.nodes.values().filter(|n| !n.evicted).count()
    }

    /// Total tracked node count including pinned (evicted) ones.
    pub fn tracked_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_and_deltas_track_depth() {
        let mut idx = ChainIndex::new();
        idx.insert_root(1, 100);
        assert_eq!(idx.depth(1), Some(0));
        assert_eq!(idx.insert_delta(2, 1, 10), Some(1));
        assert_eq!(idx.insert_delta(3, 2, 10), Some(2));
        assert_eq!(idx.stats().max_depth, 2);
        assert_eq!(idx.chain_to_root(3), vec![3, 2, 1]);
        assert_eq!(idx.chain_len(3), 3);
        assert_eq!(idx.stats().roots, 1);
        assert_eq!(idx.stats().deltas, 2);
        assert_eq!(idx.stats().full_nominal_bytes, 100);
        assert_eq!(idx.stats().delta_nominal_bytes, 20);
    }

    #[test]
    fn delta_under_unknown_parent_is_rejected() {
        let mut idx = ChainIndex::new();
        assert_eq!(idx.insert_delta(2, 99, 10), None);
        assert_eq!(idx.tracked_count(), 0);
    }

    #[test]
    fn leaf_eviction_frees_immediately() {
        let mut idx = ChainIndex::new();
        idx.insert_root(1, 100);
        assert_eq!(idx.evict(1), vec![1]);
        assert_eq!(idx.tracked_count(), 0);
        assert_eq!(idx.stats().deferred_releases, 0);
    }

    #[test]
    fn parent_eviction_defers_until_children_die() {
        let mut idx = ChainIndex::new();
        idx.insert_root(1, 100);
        idx.insert_delta(2, 1, 10).unwrap();
        // Evicting the referenced root deletes nothing yet.
        assert_eq!(idx.evict(1), Vec::<u64>::new());
        assert_eq!(idx.stats().deferred_releases, 1);
        assert!(!idx.is_live(1), "pinned parents are not valid delta bases");
        assert_eq!(idx.pinned_nominal_bytes(), 100);
        // The child can still be restored through the pinned parent.
        assert_eq!(idx.chain_to_root(2), vec![2, 1]);
        // Dropping the last child frees both blobs.
        let freed = idx.evict(2);
        assert_eq!(freed, vec![2, 1]);
        assert_eq!(idx.stats().cascade_frees, 1);
        assert_eq!(idx.tracked_count(), 0);
        assert_eq!(idx.pinned_nominal_bytes(), 0);
    }

    #[test]
    fn cascade_frees_whole_pinned_chain() {
        let mut idx = ChainIndex::new();
        idx.insert_root(1, 100);
        idx.insert_delta(2, 1, 10).unwrap();
        idx.insert_delta(3, 2, 10).unwrap();
        assert!(idx.evict(1).is_empty());
        assert!(idx.evict(2).is_empty());
        assert_eq!(idx.stats().deferred_releases, 2);
        // Freeing the leaf releases the entire pinned ancestry, deepest
        // descendant first.
        assert_eq!(idx.evict(3), vec![3, 2, 1]);
        assert_eq!(idx.stats().cascade_frees, 2);
        assert_eq!(idx.tracked_count(), 0);
    }

    #[test]
    fn sibling_keeps_parent_pinned() {
        let mut idx = ChainIndex::new();
        idx.insert_root(1, 100);
        idx.insert_delta(2, 1, 10).unwrap();
        idx.insert_delta(3, 1, 12).unwrap();
        assert!(idx.evict(1).is_empty());
        // One sibling dies: parent stays pinned for the other.
        assert_eq!(idx.evict(2), vec![2]);
        assert_eq!(idx.pinned_nominal_bytes(), 100);
        assert_eq!(idx.chain_to_root(3), vec![3, 1]);
        // Last sibling dies: parent finally freed.
        assert_eq!(idx.evict(3), vec![3, 1]);
        assert_eq!(idx.tracked_count(), 0);
    }

    #[test]
    fn stats_merge_accumulates_and_maxes_depth() {
        let a = ChainStats {
            roots: 1,
            deltas: 2,
            consolidations: 3,
            deferred_releases: 4,
            cascade_frees: 5,
            max_depth: 6,
            composed_restores: 7,
            composed_nominal_downloaded: 8,
            delta_nominal_bytes: 9,
            full_nominal_bytes: 10,
        };
        let mut b = ChainStats {
            max_depth: 2,
            ..ChainStats::default()
        };
        b.merge(&a);
        assert_eq!(b.roots, 1);
        assert_eq!(b.deltas, 2);
        assert_eq!(b.consolidations, 3);
        assert_eq!(b.deferred_releases, 4);
        assert_eq!(b.cascade_frees, 5);
        assert_eq!(b.max_depth, 6, "depth maxes, not sums");
        assert_eq!(b.composed_restores, 7);
        assert_eq!(b.composed_nominal_downloaded, 8);
        assert_eq!(b.stored_total_nominal(), 19);
    }
}

//! The shared blob map with integrity and cost accounting.

use bytes::Bytes;
use parking_lot::Mutex;
use pronghorn_sim::hash::fnv1a;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors returned by the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No such bucket/key.
    NotFound,
    /// The stored bytes no longer match their recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded at upload.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// A put would exceed the configured capacity.
    CapacityExceeded {
        /// Configured capacity in bytes.
        capacity: u64,
        /// Bytes that would be stored after the put.
        required: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound => write!(f, "object not found"),
            StoreError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: expected {expected:#x}, got {actual:#x}")
            }
            StoreError::CapacityExceeded { capacity, required } => {
                write!(f, "capacity {capacity} B exceeded (required {required} B)")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Metadata of a stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Object size in bytes.
    pub size: u64,
    /// FNV-1a checksum of the content.
    pub checksum: u64,
}

/// Storage and transfer accounting, the raw inputs of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Bytes currently stored.
    pub bytes_stored: u64,
    /// Peak of `bytes_stored` over the store's lifetime ("Max Storage
    /// Used" in Table 5).
    pub peak_bytes_stored: u64,
    /// Cumulative bytes uploaded (checkpoint transfers).
    pub bytes_uploaded: u64,
    /// Cumulative bytes downloaded (restore transfers). Upload + download
    /// together are Table 5's "Max Network Used".
    pub bytes_downloaded: u64,
    /// Number of objects currently stored.
    pub objects: u64,
    /// Completed put operations.
    pub puts: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed delete operations.
    pub deletes: u64,
}

struct Object {
    data: Bytes,
    checksum: u64,
}

#[derive(Default)]
struct Inner {
    buckets: HashMap<String, HashMap<String, Object>>,
    stats: StoreStats,
    capacity: Option<u64>,
}

/// Cloneable handle to a shared content-integrity-checked object store.
#[derive(Clone, Default)]
pub struct ObjectStore {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ObjectStore")
            .field("buckets", &inner.buckets.len())
            .field("objects", &inner.stats.objects)
            .finish()
    }
}

impl ObjectStore {
    /// Creates an unbounded store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Creates a store that rejects puts once `capacity` bytes are resident.
    ///
    /// The paper bounds the snapshot pool by *count* (`C`); the capacity
    /// here additionally lets a provider bound raw bytes (§5.3 "the cloud
    /// provider can also directly lower the storage overhead").
    pub fn with_capacity(capacity: u64) -> Self {
        let store = ObjectStore::new();
        store.inner.lock().capacity = Some(capacity);
        store
    }

    /// Uploads `data` under `bucket`/`key`, replacing any previous object.
    ///
    /// Returns the stored object's metadata.
    pub fn put(&self, bucket: &str, key: &str, data: Bytes) -> Result<ObjectMeta, StoreError> {
        let mut inner = self.inner.lock();
        let size = data.len() as u64;
        let replaced: u64 = inner
            .buckets
            .get(bucket)
            .and_then(|b| b.get(key))
            .map(|o| o.data.len() as u64)
            .unwrap_or(0);
        let required = inner.stats.bytes_stored - replaced + size;
        if let Some(cap) = inner.capacity {
            if required > cap {
                return Err(StoreError::CapacityExceeded {
                    capacity: cap,
                    required,
                });
            }
        }
        let checksum = fnv1a(&data);
        let object = Object {
            data,
            checksum,
        };
        let prev = inner
            .buckets
            .entry(bucket.to_string())
            .or_default()
            .insert(key.to_string(), object);
        inner.stats.bytes_stored = required;
        inner.stats.peak_bytes_stored = inner.stats.peak_bytes_stored.max(required);
        inner.stats.bytes_uploaded += size;
        inner.stats.puts += 1;
        if prev.is_none() {
            inner.stats.objects += 1;
        }
        Ok(ObjectMeta { size, checksum })
    }

    /// Downloads the object at `bucket`/`key`, verifying its checksum.
    pub fn get(&self, bucket: &str, key: &str) -> Result<Bytes, StoreError> {
        let mut inner = self.inner.lock();
        let object = inner
            .buckets
            .get(bucket)
            .and_then(|b| b.get(key))
            .ok_or(StoreError::NotFound)?;
        let actual = fnv1a(&object.data);
        if actual != object.checksum {
            return Err(StoreError::ChecksumMismatch {
                expected: object.checksum,
                actual,
            });
        }
        let data = object.data.clone();
        inner.stats.bytes_downloaded += data.len() as u64;
        inner.stats.gets += 1;
        Ok(data)
    }

    /// Returns metadata without transferring the object.
    pub fn head(&self, bucket: &str, key: &str) -> Result<ObjectMeta, StoreError> {
        let inner = self.inner.lock();
        inner
            .buckets
            .get(bucket)
            .and_then(|b| b.get(key))
            .map(|o| ObjectMeta {
                size: o.data.len() as u64,
                checksum: o.checksum,
            })
            .ok_or(StoreError::NotFound)
    }

    /// Deletes the object at `bucket`/`key`.
    pub fn delete(&self, bucket: &str, key: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let removed = inner
            .buckets
            .get_mut(bucket)
            .and_then(|b| b.remove(key))
            .ok_or(StoreError::NotFound)?;
        inner.stats.bytes_stored -= removed.data.len() as u64;
        inner.stats.objects -= 1;
        inner.stats.deletes += 1;
        Ok(())
    }

    /// Lists keys in `bucket`, sorted.
    pub fn list(&self, bucket: &str) -> Vec<String> {
        let inner = self.inner.lock();
        let mut keys: Vec<String> = inner
            .buckets
            .get(bucket)
            .map(|b| b.keys().cloned().collect())
            .unwrap_or_default();
        keys.sort();
        keys
    }

    /// Snapshot of the accounting counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize) -> Bytes {
        Bytes::from(vec![0xabu8; n])
    }

    #[test]
    fn put_get_round_trip_with_checksum() {
        let s = ObjectStore::new();
        let meta = s.put("b", "k", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(meta.checksum, fnv1a(b"hello"));
        assert_eq!(&s.get("b", "k").unwrap()[..], b"hello");
    }

    #[test]
    fn get_missing_is_not_found() {
        let s = ObjectStore::new();
        assert_eq!(s.get("b", "k").unwrap_err(), StoreError::NotFound);
        assert_eq!(s.head("b", "k").unwrap_err(), StoreError::NotFound);
        assert_eq!(s.delete("b", "k").unwrap_err(), StoreError::NotFound);
    }

    #[test]
    fn replace_updates_storage_accounting() {
        let s = ObjectStore::new();
        s.put("b", "k", blob(100)).unwrap();
        s.put("b", "k", blob(40)).unwrap();
        let st = s.stats();
        assert_eq!(st.bytes_stored, 40);
        assert_eq!(st.peak_bytes_stored, 100);
        assert_eq!(st.bytes_uploaded, 140);
        assert_eq!(st.objects, 1);
    }

    #[test]
    fn delete_releases_storage() {
        let s = ObjectStore::new();
        s.put("b", "k", blob(64)).unwrap();
        s.delete("b", "k").unwrap();
        let st = s.stats();
        assert_eq!(st.bytes_stored, 0);
        assert_eq!(st.objects, 0);
        // Peak and cumulative transfer survive deletion.
        assert_eq!(st.peak_bytes_stored, 64);
        assert_eq!(st.bytes_uploaded, 64);
    }

    #[test]
    fn downloads_accumulate() {
        let s = ObjectStore::new();
        s.put("b", "k", blob(10)).unwrap();
        s.get("b", "k").unwrap();
        s.get("b", "k").unwrap();
        assert_eq!(s.stats().bytes_downloaded, 20);
        assert_eq!(s.stats().gets, 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let s = ObjectStore::with_capacity(100);
        s.put("b", "a", blob(60)).unwrap();
        let err = s.put("b", "b", blob(50)).unwrap_err();
        assert!(matches!(err, StoreError::CapacityExceeded { capacity: 100, required: 110 }));
        // Replacement that shrinks usage is allowed.
        s.put("b", "a", blob(10)).unwrap();
        s.put("b", "b", blob(50)).unwrap();
        assert_eq!(s.stats().bytes_stored, 60);
    }

    #[test]
    fn buckets_are_isolated() {
        let s = ObjectStore::new();
        s.put("snapshots", "k", blob(1)).unwrap();
        assert_eq!(s.get("other", "k").unwrap_err(), StoreError::NotFound);
        assert_eq!(s.list("snapshots"), vec!["k".to_string()]);
        assert!(s.list("other").is_empty());
    }

    #[test]
    fn list_is_sorted() {
        let s = ObjectStore::new();
        for k in ["zeta", "alpha", "mid"] {
            s.put("b", k, blob(1)).unwrap();
        }
        assert_eq!(s.list("b"), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn clones_share_state() {
        let s = ObjectStore::new();
        let t = s.clone();
        s.put("b", "k", blob(3)).unwrap();
        assert_eq!(t.stats().objects, 1);
        assert!(t.get("b", "k").is_ok());
    }
}

//! The shared blob map with integrity, dedup, and cost accounting.
//!
//! Objects come in two physical shapes:
//!
//! - **plain**: one contiguous byte buffer (the original API);
//! - **chunked**: a small head + a content-addressed payload blob + a small
//!   tail, written via [`ObjectStore::put_chunked`]. Payload blobs are
//!   deduplicated across keys by their `Fnv1aWide` content hash with
//!   refcounting — byte-identical snapshot payloads from twin lineages
//!   occupy storage once, and a blob is only freed when its *last*
//!   referencing object is deleted (the §7.2 twin-eviction guard: evicting
//!   one twin must never corrupt the other).
//!
//! Both shapes share the same key namespace, accounting counters, and
//! integrity checks; logical sizes (what a `get` returns) are what the
//! transfer counters record, while `bytes_stored` tracks physical
//! (deduplicated) residency.

use bytes::Bytes;
use parking_lot::Mutex;
use pronghorn_sim::hash::{fnv1a_wide, Fnv1aWide};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors returned by the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No such bucket/key.
    NotFound,
    /// The stored bytes no longer match their recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded at upload.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// A put would exceed the configured capacity.
    CapacityExceeded {
        /// Configured capacity in bytes.
        capacity: u64,
        /// Bytes that would be stored after the put.
        required: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound => write!(f, "object not found"),
            StoreError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#x}, got {actual:#x}"
                )
            }
            StoreError::CapacityExceeded { capacity, required } => {
                write!(f, "capacity {capacity} B exceeded (required {required} B)")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Metadata of a stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Logical object size in bytes (what a `get` returns).
    pub size: u64,
    /// `Fnv1aWide` checksum of the object's own (non-deduplicated) bytes:
    /// the whole buffer for plain objects, head + tail for chunked ones.
    pub checksum: u64,
}

/// Storage and transfer accounting, the raw inputs of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Physical bytes currently stored (deduplicated blobs counted once).
    pub bytes_stored: u64,
    /// Peak of `bytes_stored` over the store's lifetime ("Max Storage
    /// Used" in Table 5).
    pub peak_bytes_stored: u64,
    /// Cumulative bytes uploaded (checkpoint transfers). Deduplicated
    /// payloads are not re-transferred: a content-addressed client sends
    /// the hash and skips the body.
    pub bytes_uploaded: u64,
    /// Cumulative bytes downloaded (restore transfers). Upload + download
    /// together are Table 5's "Max Network Used".
    pub bytes_downloaded: u64,
    /// Payload bytes that dedup avoided storing and uploading.
    pub bytes_deduped: u64,
    /// Number of objects currently stored.
    pub objects: u64,
    /// Completed put operations.
    pub puts: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed delete operations.
    pub deletes: u64,
}

/// A refcounted, content-addressed payload blob.
struct BlobEntry {
    data: Bytes,
    refs: u64,
}

struct Object {
    /// Plain objects: the whole buffer. Chunked objects: the frame head.
    head: Bytes,
    /// Content address into the blob table (chunked objects only).
    blob: Option<u64>,
    /// Frame tail (chunked objects only; empty otherwise).
    tail: Bytes,
    /// `Fnv1aWide` over head ++ tail.
    checksum: u64,
}

impl Object {
    fn own_len(&self) -> u64 {
        (self.head.len() + self.tail.len()) as u64
    }
}

#[derive(Default)]
struct Inner {
    buckets: BTreeMap<String, BTreeMap<String, Object>>,
    blobs: BTreeMap<u64, BlobEntry>,
    stats: StoreStats,
    capacity: Option<u64>,
}

impl Inner {
    fn logical_len(&self, object: &Object) -> u64 {
        let blob_len = object
            .blob
            .map(|h| self.blobs[&h].data.len() as u64)
            .unwrap_or(0);
        object.own_len() + blob_len
    }

    /// Removes the object under `bucket`/`key` (if any), releasing its
    /// blob reference, and returns the physical bytes freed.
    fn remove_object(&mut self, bucket: &str, key: &str) -> Option<u64> {
        let object = self.buckets.get_mut(bucket)?.remove(key)?;
        let mut freed = object.own_len();
        if let Some(hash) = object.blob {
            // A live object's blob entry always exists (ref inserts and
            // removes are paired in put/remove). Should that ever break,
            // degrade to not counting the blob as freed — this runs on the
            // policy's eviction path, where a panic would abort the whole
            // decision loop (pronglint rule `panic-reach`).
            if let Some(entry) = self.blobs.get_mut(&hash) {
                entry.refs = entry.refs.saturating_sub(1);
                if entry.refs == 0 {
                    freed += entry.data.len() as u64;
                    self.blobs.remove(&hash);
                }
            } else {
                debug_assert!(false, "blob entry missing for live ref {hash}");
            }
        }
        Some(freed)
    }

    /// Physical bytes that removing `bucket`/`key` would free, assuming a
    /// blob with hash `incoming` is about to gain a reference (so a blob
    /// shared with the incoming object is not counted as freed).
    fn would_free(&self, bucket: &str, key: &str, incoming: Option<u64>) -> u64 {
        let Some(object) = self.buckets.get(bucket).and_then(|b| b.get(key)) else {
            return 0;
        };
        let mut freed = object.own_len();
        if let Some(hash) = object.blob {
            if self.blobs[&hash].refs == 1 && incoming != Some(hash) {
                freed += self.blobs[&hash].data.len() as u64;
            }
        }
        freed
    }

    fn checksum_of(head: &[u8], tail: &[u8]) -> u64 {
        let mut h = Fnv1aWide::new();
        h.write(head);
        h.write(tail);
        h.finish()
    }

    fn verify(&self, object: &Object) -> Result<(), StoreError> {
        let actual = Inner::checksum_of(&object.head, &object.tail);
        if actual != object.checksum {
            return Err(StoreError::ChecksumMismatch {
                expected: object.checksum,
                actual,
            });
        }
        if let Some(hash) = object.blob {
            let actual = fnv1a_wide(&self.blobs[&hash].data);
            if actual != hash {
                return Err(StoreError::ChecksumMismatch {
                    expected: hash,
                    actual,
                });
            }
        }
        Ok(())
    }
}

/// Cloneable handle to a shared content-integrity-checked object store.
#[derive(Clone, Default)]
pub struct ObjectStore {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ObjectStore")
            .field("buckets", &inner.buckets.len())
            .field("objects", &inner.stats.objects)
            .field("blobs", &inner.blobs.len())
            .finish()
    }
}

impl ObjectStore {
    /// Creates an unbounded store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Creates a store that rejects puts once `capacity` bytes are resident.
    ///
    /// The paper bounds the snapshot pool by *count* (`C`); the capacity
    /// here additionally lets a provider bound raw bytes (§5.3 "the cloud
    /// provider can also directly lower the storage overhead").
    pub fn with_capacity(capacity: u64) -> Self {
        let store = ObjectStore::new();
        store.inner.lock().capacity = Some(capacity);
        store
    }

    /// Uploads `data` under `bucket`/`key`, replacing any previous object.
    ///
    /// Returns the stored object's metadata.
    pub fn put(&self, bucket: &str, key: &str, data: Bytes) -> Result<ObjectMeta, StoreError> {
        let mut inner = self.inner.lock();
        let size = data.len() as u64;
        let released = inner.would_free(bucket, key, None);
        let required = inner.stats.bytes_stored - released + size;
        if let Some(cap) = inner.capacity {
            if required > cap {
                return Err(StoreError::CapacityExceeded {
                    capacity: cap,
                    required,
                });
            }
        }
        let replaced = inner.remove_object(bucket, key).is_some();
        let checksum = fnv1a_wide(&data);
        let object = Object {
            head: data,
            blob: None,
            tail: Bytes::new(),
            checksum,
        };
        inner
            .buckets
            .entry(bucket.to_string())
            .or_default()
            .insert(key.to_string(), object);
        inner.stats.bytes_stored = required;
        inner.stats.peak_bytes_stored = inner.stats.peak_bytes_stored.max(required);
        inner.stats.bytes_uploaded += size;
        inner.stats.puts += 1;
        if !replaced {
            inner.stats.objects += 1;
        }
        Ok(ObjectMeta { size, checksum })
    }

    /// Uploads a chunked object — head, payload, tail — deduplicating the
    /// payload by content across all keys and buckets.
    ///
    /// If a byte-identical payload is already resident (a twin lineage's
    /// snapshot), only the small head and tail are stored and transferred;
    /// the payload gains a reference instead. The returned metadata's
    /// `size` is the logical (reassembled) size.
    pub fn put_chunked(
        &self,
        bucket: &str,
        key: &str,
        head: Bytes,
        payload: Bytes,
        tail: Bytes,
    ) -> Result<ObjectMeta, StoreError> {
        let mut inner = self.inner.lock();
        let hash = fnv1a_wide(&payload);
        let blob_is_new = !inner.blobs.contains_key(&hash);
        let own = (head.len() + tail.len()) as u64;
        let payload_len = payload.len() as u64;
        let added = own + if blob_is_new { payload_len } else { 0 };
        let released = inner.would_free(bucket, key, Some(hash));
        let required = inner.stats.bytes_stored - released + added;
        if let Some(cap) = inner.capacity {
            if required > cap {
                return Err(StoreError::CapacityExceeded {
                    capacity: cap,
                    required,
                });
            }
        }
        let replaced = inner.remove_object(bucket, key).is_some();
        inner
            .blobs
            .entry(hash)
            .or_insert_with(|| BlobEntry {
                data: payload,
                refs: 0,
            })
            .refs += 1;
        let checksum = Inner::checksum_of(&head, &tail);
        let object = Object {
            head,
            blob: Some(hash),
            tail,
            checksum,
        };
        inner
            .buckets
            .entry(bucket.to_string())
            .or_default()
            .insert(key.to_string(), object);
        inner.stats.bytes_stored = required;
        inner.stats.peak_bytes_stored = inner.stats.peak_bytes_stored.max(required);
        inner.stats.bytes_uploaded += added;
        if !blob_is_new {
            inner.stats.bytes_deduped += payload_len;
        }
        inner.stats.puts += 1;
        if !replaced {
            inner.stats.objects += 1;
        }
        Ok(ObjectMeta {
            size: own + payload_len,
            checksum,
        })
    }

    /// Downloads the object at `bucket`/`key` as one contiguous buffer,
    /// verifying its checksums. Chunked objects are reassembled (copied);
    /// prefer [`Self::get_chunks`] for those on hot paths.
    pub fn get(&self, bucket: &str, key: &str) -> Result<Bytes, StoreError> {
        let mut inner = self.inner.lock();
        let object = inner
            .buckets
            .get(bucket)
            .and_then(|b| b.get(key))
            .ok_or(StoreError::NotFound)?;
        inner.verify(object)?;
        let data = match object.blob {
            None => object.head.clone(),
            Some(hash) => {
                let blob = &inner.blobs[&hash].data;
                let mut out =
                    Vec::with_capacity(object.head.len() + blob.len() + object.tail.len());
                out.extend_from_slice(&object.head);
                out.extend_from_slice(blob);
                out.extend_from_slice(&object.tail);
                Bytes::from(out)
            }
        };
        inner.stats.bytes_downloaded += data.len() as u64;
        inner.stats.gets += 1;
        Ok(data)
    }

    /// Downloads the object at `bucket`/`key` as its stored chunks,
    /// zero-copy: the returned [`Bytes`] share the store's buffers.
    /// Plain objects yield a single chunk; chunked objects yield
    /// `[head, payload, tail]`.
    pub fn get_chunks(&self, bucket: &str, key: &str) -> Result<Vec<Bytes>, StoreError> {
        let mut inner = self.inner.lock();
        let object = inner
            .buckets
            .get(bucket)
            .and_then(|b| b.get(key))
            .ok_or(StoreError::NotFound)?;
        inner.verify(object)?;
        let chunks = match object.blob {
            None => vec![object.head.clone()],
            Some(hash) => vec![
                object.head.clone(),
                inner.blobs[&hash].data.clone(),
                object.tail.clone(),
            ],
        };
        inner.stats.bytes_downloaded += chunks.iter().map(|c| c.len() as u64).sum::<u64>();
        inner.stats.gets += 1;
        Ok(chunks)
    }

    /// Downloads many objects from one bucket in a single batched
    /// operation — the transport for a working-set prefetch. Missing keys
    /// yield `None` in their slot instead of failing the batch; resident
    /// objects are verified and reassembled like [`Self::get`]. The whole
    /// batch counts as one `get` in the accounting stats.
    pub fn get_many(&self, bucket: &str, keys: &[&str]) -> Result<Vec<Option<Bytes>>, StoreError> {
        let mut inner = self.inner.lock();
        let mut out = Vec::with_capacity(keys.len());
        let mut bytes = 0u64;
        for key in keys {
            let Some(object) = inner.buckets.get(bucket).and_then(|b| b.get(*key)) else {
                out.push(None);
                continue;
            };
            inner.verify(object)?;
            let data = match object.blob {
                None => object.head.clone(),
                Some(hash) => {
                    let blob = &inner.blobs[&hash].data;
                    let mut buf =
                        Vec::with_capacity(object.head.len() + blob.len() + object.tail.len());
                    buf.extend_from_slice(&object.head);
                    buf.extend_from_slice(blob);
                    buf.extend_from_slice(&object.tail);
                    Bytes::from(buf)
                }
            };
            bytes += data.len() as u64;
            out.push(Some(data));
        }
        inner.stats.bytes_downloaded += bytes;
        inner.stats.gets += 1;
        Ok(out)
    }

    /// Returns metadata without transferring the object.
    pub fn head(&self, bucket: &str, key: &str) -> Result<ObjectMeta, StoreError> {
        let inner = self.inner.lock();
        let object = inner
            .buckets
            .get(bucket)
            .and_then(|b| b.get(key))
            .ok_or(StoreError::NotFound)?;
        Ok(ObjectMeta {
            size: inner.logical_len(object),
            checksum: object.checksum,
        })
    }

    /// Deletes the object at `bucket`/`key`. A deduplicated payload blob
    /// is freed only when its last referencing object goes away.
    pub fn delete(&self, bucket: &str, key: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let freed = inner
            .remove_object(bucket, key)
            .ok_or(StoreError::NotFound)?;
        inner.stats.bytes_stored -= freed;
        inner.stats.objects -= 1;
        inner.stats.deletes += 1;
        Ok(())
    }

    /// Lists keys in `bucket`, sorted (the bucket map is ordered).
    pub fn list(&self, bucket: &str) -> Vec<String> {
        let inner = self.inner.lock();
        inner
            .buckets
            .get(bucket)
            .map(|b| b.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Snapshot of the accounting counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Number of distinct payload blobs resident in the dedup table.
    pub fn blob_count(&self) -> usize {
        self.inner.lock().blobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize) -> Bytes {
        Bytes::from(vec![0xabu8; n])
    }

    #[test]
    fn put_get_round_trip_with_checksum() {
        let s = ObjectStore::new();
        let meta = s.put("b", "k", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(meta.checksum, fnv1a_wide(b"hello"));
        assert_eq!(&s.get("b", "k").unwrap()[..], b"hello");
    }

    #[test]
    fn get_missing_is_not_found() {
        let s = ObjectStore::new();
        assert_eq!(s.get("b", "k").unwrap_err(), StoreError::NotFound);
        assert_eq!(s.head("b", "k").unwrap_err(), StoreError::NotFound);
        assert_eq!(s.delete("b", "k").unwrap_err(), StoreError::NotFound);
        assert_eq!(s.get_chunks("b", "k").unwrap_err(), StoreError::NotFound);
    }

    #[test]
    fn replace_updates_storage_accounting() {
        let s = ObjectStore::new();
        s.put("b", "k", blob(100)).unwrap();
        s.put("b", "k", blob(40)).unwrap();
        let st = s.stats();
        assert_eq!(st.bytes_stored, 40);
        assert_eq!(st.peak_bytes_stored, 100);
        assert_eq!(st.bytes_uploaded, 140);
        assert_eq!(st.objects, 1);
    }

    #[test]
    fn delete_releases_storage() {
        let s = ObjectStore::new();
        s.put("b", "k", blob(64)).unwrap();
        s.delete("b", "k").unwrap();
        let st = s.stats();
        assert_eq!(st.bytes_stored, 0);
        assert_eq!(st.objects, 0);
        // Peak and cumulative transfer survive deletion.
        assert_eq!(st.peak_bytes_stored, 64);
        assert_eq!(st.bytes_uploaded, 64);
    }

    #[test]
    fn downloads_accumulate() {
        let s = ObjectStore::new();
        s.put("b", "k", blob(10)).unwrap();
        s.get("b", "k").unwrap();
        s.get("b", "k").unwrap();
        assert_eq!(s.stats().bytes_downloaded, 20);
        assert_eq!(s.stats().gets, 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let s = ObjectStore::with_capacity(100);
        s.put("b", "a", blob(60)).unwrap();
        let err = s.put("b", "b", blob(50)).unwrap_err();
        assert!(matches!(
            err,
            StoreError::CapacityExceeded {
                capacity: 100,
                required: 110
            }
        ));
        // Replacement that shrinks usage is allowed.
        s.put("b", "a", blob(10)).unwrap();
        s.put("b", "b", blob(50)).unwrap();
        assert_eq!(s.stats().bytes_stored, 60);
    }

    #[test]
    fn buckets_are_isolated() {
        let s = ObjectStore::new();
        s.put("snapshots", "k", blob(1)).unwrap();
        assert_eq!(s.get("other", "k").unwrap_err(), StoreError::NotFound);
        assert_eq!(s.list("snapshots"), vec!["k".to_string()]);
        assert!(s.list("other").is_empty());
    }

    #[test]
    fn list_is_sorted() {
        let s = ObjectStore::new();
        for k in ["zeta", "alpha", "mid"] {
            s.put("b", k, blob(1)).unwrap();
        }
        assert_eq!(s.list("b"), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn clones_share_state() {
        let s = ObjectStore::new();
        let t = s.clone();
        s.put("b", "k", blob(3)).unwrap();
        assert_eq!(t.stats().objects, 1);
        assert!(t.get("b", "k").is_ok());
    }

    fn chunked(tag: u8, payload: &Bytes) -> (Bytes, Bytes, Bytes) {
        (
            Bytes::from(vec![tag; 16]),
            payload.clone(),
            Bytes::from(vec![tag ^ 0xff; 8]),
        )
    }

    #[test]
    fn chunked_round_trips_contiguously_and_by_chunks() {
        let s = ObjectStore::new();
        let payload = blob(100);
        let (h, p, t) = chunked(1, &payload);
        let meta = s.put_chunked("b", "k", h.clone(), p, t.clone()).unwrap();
        assert_eq!(meta.size, 16 + 100 + 8);
        // Contiguous read reassembles.
        let whole = s.get("b", "k").unwrap();
        assert_eq!(whole.len(), 124);
        assert_eq!(&whole[..16], &h[..]);
        assert_eq!(&whole[16..116], &payload[..]);
        assert_eq!(&whole[116..], &t[..]);
        // Chunked read is exact.
        let chunks = s.get_chunks("b", "k").unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[1], payload);
        assert_eq!(s.head("b", "k").unwrap().size, 124);
    }

    #[test]
    fn twin_payloads_are_stored_once() {
        let s = ObjectStore::new();
        let payload = blob(1000);
        let (h1, p1, t1) = chunked(1, &payload);
        let (h2, p2, t2) = chunked(2, &payload);
        s.put_chunked("b", "twin-a", h1, p1, t1).unwrap();
        let before = s.stats();
        assert_eq!(before.bytes_stored, 24 + 1000);
        s.put_chunked("b", "twin-b", h2, p2, t2).unwrap();
        let after = s.stats();
        // Second twin adds only head+tail physically.
        assert_eq!(after.bytes_stored, before.bytes_stored + 24);
        assert_eq!(after.bytes_deduped, 1000);
        assert_eq!(after.bytes_uploaded, before.bytes_uploaded + 24);
        assert_eq!(after.objects, 2);
        assert_eq!(s.blob_count(), 1);
    }

    #[test]
    fn twin_eviction_preserves_the_survivor() {
        // The §7.2 guard: deleting one twin must not free the shared blob.
        let s = ObjectStore::new();
        let payload = blob(500);
        let (h1, p1, t1) = chunked(1, &payload);
        let (h2, p2, t2) = chunked(2, &payload);
        s.put_chunked("b", "twin-a", h1, p1, t1).unwrap();
        s.put_chunked("b", "twin-b", h2, p2, t2).unwrap();
        s.delete("b", "twin-a").unwrap();
        assert_eq!(s.blob_count(), 1, "blob must survive the first eviction");
        let chunks = s.get_chunks("b", "twin-b").unwrap();
        assert_eq!(chunks[1], payload);
        // Last reference gone: blob is freed, storage returns to zero.
        s.delete("b", "twin-b").unwrap();
        assert_eq!(s.blob_count(), 0);
        assert_eq!(s.stats().bytes_stored, 0);
    }

    #[test]
    fn replacing_chunked_object_releases_blob_reference() {
        let s = ObjectStore::new();
        let payload = blob(300);
        let (h, p, t) = chunked(1, &payload);
        s.put_chunked("b", "k", h, p, t).unwrap();
        // Replace with a plain object: the orphaned blob must be freed.
        s.put("b", "k", blob(10)).unwrap();
        assert_eq!(s.blob_count(), 0);
        assert_eq!(s.stats().bytes_stored, 10);
        assert_eq!(s.stats().objects, 1);
    }

    #[test]
    fn chunked_capacity_counts_physical_bytes() {
        let s = ObjectStore::with_capacity(1100);
        let payload = blob(1000);
        let (h1, p1, t1) = chunked(1, &payload);
        s.put_chunked("b", "a", h1, p1, t1).unwrap();
        // 1024 resident; a twin fits because only head+tail (24 B) are new.
        let (h2, p2, t2) = chunked(2, &payload);
        s.put_chunked("b", "b", h2, p2, t2).unwrap();
        assert_eq!(s.stats().bytes_stored, 1048);
        // A distinct payload of the same size does not fit.
        let other = Bytes::from(vec![0x11u8; 1000]);
        let (h3, p3, t3) = chunked(3, &other);
        assert!(matches!(
            s.put_chunked("b", "c", h3, p3, t3),
            Err(StoreError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn dedup_spans_buckets_and_plain_objects_do_not_dedup() {
        let s = ObjectStore::new();
        let payload = blob(200);
        let (h1, p1, t1) = chunked(1, &payload);
        let (h2, p2, t2) = chunked(2, &payload);
        s.put_chunked("x", "k", h1, p1, t1).unwrap();
        s.put_chunked("y", "k", h2, p2, t2).unwrap();
        assert_eq!(s.blob_count(), 1);
        // Plain puts of identical bytes still store twice (opaque blobs).
        s.put("z", "a", payload.clone()).unwrap();
        s.put("z", "b", payload.clone()).unwrap();
        assert_eq!(s.stats().bytes_stored, 24 * 2 + 200 + 200 + 200);
    }

    #[test]
    fn get_many_batches_with_holes() {
        let s = ObjectStore::new();
        s.put("b", "k0", Bytes::from_static(b"aa")).unwrap();
        let (h, p, t) = chunked(1, &blob(100));
        s.put_chunked("b", "k2", h, p, t).unwrap();
        let before = s.stats();
        let got = s.get_many("b", &["k0", "missing", "k2"]).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].as_deref(), Some(&b"aa"[..]));
        assert!(got[1].is_none());
        assert_eq!(got[2].as_ref().unwrap().len(), 124);
        let after = s.stats();
        // The whole batch is one accounted get; bytes cover both hits.
        assert_eq!(after.gets, before.gets + 1);
        assert_eq!(after.bytes_downloaded, before.bytes_downloaded + 2 + 124);
    }

    #[test]
    fn get_many_of_nothing_is_empty() {
        let s = ObjectStore::new();
        assert_eq!(s.get_many("b", &[]).unwrap(), Vec::new());
    }
}

//! Tiered snapshot storage: local-SSD cache over the global object store.
//!
//! The paper's restore path treats the Object Store as flat: every
//! restore pays the full network price for every byte of the chain. Real
//! deployments interpose a node-local NVMe tier (and compress what goes
//! over the wire) — REAP-style analysis shows most restore bytes are
//! wasted on pages outside the working set, and the remaining latency is
//! dominated by where the surviving bytes live. This module models that
//! hierarchy:
//!
//! - [`StoragePolicy`] — which tiers are enabled. The default is
//!   *disabled*, and a disabled policy constructs no tier at all, so the
//!   flat-store path stays byte-identical to the pre-tier simulator.
//! - [`CacheTier`] — a capacity-bounded local-SSD blob cache with a
//!   θ-weight-driven admission/eviction policy (the same per-request
//!   weights the request-centric checkpoint policy learns) that never
//!   evicts a chain ancestor still referenced by a resident leaf.
//! - [`StorageTier`] — the pricing facade: routes reads to SSD or
//!   network, applies [`compress`](crate::compress) wire sizing, and
//!   accumulates [`StorageStats`].
//!
//! Everything here is deterministic and RNG-free: enabling a tier
//! re-prices transfers but never perturbs a seeded run's random streams.

use std::collections::{BTreeMap, BTreeSet};

use pronghorn_sim::SimDuration;

use crate::accounting::saturating_accumulate;
use crate::compress;
use crate::transfer::TransferModel;

/// Default local-SSD cache capacity: 512 MiB, enough for a handful of
/// ~55 MB PyPy-class images (Table 4) but small enough that the
/// θ-weighted eviction policy is exercised under the paper's pool sizes.
pub const DEFAULT_CACHE_CAPACITY: u64 = 512 << 20;

/// Configuration of the local-SSD cache tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Cache capacity in bytes (decompressed blob sizes are charged).
    pub capacity_bytes: u64,
    /// Transfer model for cache hits. Default: NVMe-class local read,
    /// ~16µs issue latency at 25 Gb/s (~3.1 GB/s) effective bandwidth.
    pub ssd: TransferModel,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: DEFAULT_CACHE_CAPACITY,
            ssd: TransferModel::from_gbps(16.0, 25.0),
        }
    }
}

/// Which storage tiers are active for a run. `Default`/[`Self::disabled`]
/// turns everything off; the platform constructs no [`StorageTier`] for a
/// disabled policy, pinning the flat-store arm bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoragePolicy {
    /// Local-SSD cache tier, if enabled.
    pub cache: Option<CacheConfig>,
    /// Modeled wire compression (see [`crate::compress`]).
    pub compression: bool,
    /// Delta-aware composed-chain prefetch: once a working-set manifest
    /// is known, restore downloads fetch only the composed chain's
    /// touched pages (newest-writer already resolved by the page index)
    /// in one batched request instead of walking the chain serially.
    pub composed_prefetch: bool,
}

impl StoragePolicy {
    /// All tiers off — the flat object store of the base simulator.
    pub fn disabled() -> Self {
        StoragePolicy::default()
    }

    /// True when any tier is active (a tier object is worth building).
    pub fn enabled(&self) -> bool {
        self.cache.is_some() || self.compression || self.composed_prefetch
    }

    /// Enables the SSD cache tier with default sizing.
    pub fn with_cache(mut self) -> Self {
        self.cache = Some(CacheConfig::default());
        self
    }

    /// Enables the SSD cache tier with an explicit configuration.
    pub fn with_cache_config(mut self, cfg: CacheConfig) -> Self {
        self.cache = Some(cfg);
        self
    }

    /// Enables modeled wire compression.
    pub fn with_compression(mut self) -> Self {
        self.compression = true;
        self
    }

    /// Enables composed-chain working-set prefetch.
    pub fn with_composed_prefetch(mut self) -> Self {
        self.composed_prefetch = true;
        self
    }

    /// Short human label for reports ("flat", "cache+compress", …).
    pub fn label(&self) -> String {
        if !self.enabled() {
            return "flat".to_string();
        }
        let mut parts = Vec::new();
        if self.cache.is_some() {
            parts.push("cache");
        }
        if self.compression {
            parts.push("compress");
        }
        if self.composed_prefetch {
            parts.push("composed");
        }
        parts.join("+")
    }
}

/// Counters for the storage hierarchy, reported on run results. Byte
/// counters follow the repo-wide accounting discipline (accumulated via
/// `store::accounting`, pinned loud on overflow). All *byte* fields that
/// feed reports are in the units their name says: `*_hit/miss_bytes` are
/// nominal (decompressed) bytes, `wire_bytes_*` are post-compression
/// on-the-wire bytes (equal to nominal when compression is off).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StorageStats {
    /// Reads served from the local SSD cache.
    pub cache_hits: u64,
    /// Reads that had to go to the object store.
    pub cache_misses: u64,
    /// Blobs admitted into the cache.
    pub cache_admits: u64,
    /// Blobs evicted to make room.
    pub cache_evictions: u64,
    /// Admissions refused (candidate weight below the victims it would
    /// displace, or blob larger than the cache).
    pub cache_rejects: u64,
    /// Nominal bytes served from the SSD tier.
    pub cache_hit_bytes: u64,
    /// Nominal bytes that missed and were fetched from the store.
    pub cache_miss_bytes: u64,
    /// Nominal bytes displaced by evictions.
    pub cache_evicted_bytes: u64,
    /// Post-compression bytes pulled over the network on misses.
    pub wire_bytes_downloaded: u64,
    /// Post-compression bytes pushed over the network on uploads.
    pub wire_bytes_uploaded: u64,
    /// CPU time spent compressing uploads, µs.
    pub compress_us: f64,
    /// CPU time spent decompressing fetched data, µs.
    pub decompress_us: f64,
    /// Restore downloads that used the composed working-set path.
    pub composed_prefetches: u64,
    /// Nominal bytes the composed path avoided downloading (full chain
    /// size minus the working set actually fetched).
    pub composed_bytes_saved: u64,
}

impl StorageStats {
    /// Folds `other` into `self` (for aggregating partitions or nodes).
    pub fn merge(&mut self, other: &StorageStats) {
        saturating_accumulate("cache_hits", &mut self.cache_hits, other.cache_hits);
        saturating_accumulate("cache_misses", &mut self.cache_misses, other.cache_misses);
        saturating_accumulate("cache_admits", &mut self.cache_admits, other.cache_admits);
        saturating_accumulate(
            "cache_evictions",
            &mut self.cache_evictions,
            other.cache_evictions,
        );
        saturating_accumulate(
            "cache_rejects",
            &mut self.cache_rejects,
            other.cache_rejects,
        );
        saturating_accumulate(
            "cache_hit_bytes",
            &mut self.cache_hit_bytes,
            other.cache_hit_bytes,
        );
        saturating_accumulate(
            "cache_miss_bytes",
            &mut self.cache_miss_bytes,
            other.cache_miss_bytes,
        );
        saturating_accumulate(
            "cache_evicted_bytes",
            &mut self.cache_evicted_bytes,
            other.cache_evicted_bytes,
        );
        saturating_accumulate(
            "wire_bytes_downloaded",
            &mut self.wire_bytes_downloaded,
            other.wire_bytes_downloaded,
        );
        saturating_accumulate(
            "wire_bytes_uploaded",
            &mut self.wire_bytes_uploaded,
            other.wire_bytes_uploaded,
        );
        self.compress_us += other.compress_us;
        self.decompress_us += other.decompress_us;
        saturating_accumulate(
            "composed_prefetches",
            &mut self.composed_prefetches,
            other.composed_prefetches,
        );
        saturating_accumulate(
            "composed_bytes_saved",
            &mut self.composed_bytes_saved,
            other.composed_bytes_saved,
        );
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    bytes: u64,
    weight: f64,
    seq: u64,
    /// Chain ancestors this blob composes over; resident ancestors are
    /// pinned (never evicted) while this entry is resident.
    ancestors: Vec<u64>,
}

/// Outcome of a cache admission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmitOutcome {
    /// Whether the blob is now resident.
    pub admitted: bool,
    /// `(id, bytes)` of every entry evicted to make room.
    pub evicted: Vec<(u64, u64)>,
}

/// Capacity-bounded local-SSD blob cache with θ-weighted eviction.
///
/// Victims are chosen lowest `(weight, seq)` first among *unpinned*
/// entries — an entry is pinned while any resident entry lists it as a
/// chain ancestor, so a composed leaf never loses the deltas under it.
/// An admission is refused outright (no partial eviction) when the
/// candidate's weight does not dominate the victims it would displace.
#[derive(Debug, Clone)]
pub struct CacheTier {
    capacity: u64,
    used: u64,
    seq: u64,
    entries: BTreeMap<u64, CacheEntry>,
}

impl CacheTier {
    /// An empty cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        CacheTier {
            capacity,
            used: 0,
            seq: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Configured capacity, bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident blobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    /// Resident size of `id`, if any.
    pub fn bytes_of(&self, id: u64) -> Option<u64> {
        self.entries.get(&id).map(|e| e.bytes)
    }

    /// Resident blob ids, ascending.
    pub fn resident_ids(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }

    /// Ids pinned right now: referenced as a chain ancestor by some
    /// *other* resident entry.
    pub fn pinned_ids(&self) -> BTreeSet<u64> {
        let mut pinned = BTreeSet::new();
        for (id, e) in &self.entries {
            for a in &e.ancestors {
                if a != id && self.entries.contains_key(a) {
                    pinned.insert(*a);
                }
            }
        }
        pinned
    }

    /// Number of resident entries pinning `id` — the blob's refcount in
    /// the cache's dependency graph.
    pub fn refcount(&self, id: u64) -> usize {
        self.entries
            .iter()
            .filter(|(eid, e)| **eid != id && e.ancestors.contains(&id))
            .count()
    }

    /// Refreshes recency and weight of a resident blob.
    pub fn touch(&mut self, id: u64, weight: f64) {
        self.seq += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.weight = weight;
            e.seq = self.seq;
        }
    }

    /// Tries to admit `id` (`bytes` decompressed) with priority `weight`,
    /// recording `ancestors` as the chain blobs it composes over. Already
    /// resident blobs are touched instead. Admission either fits (possibly
    /// evicting strictly lower-weight unpinned victims) or is refused with
    /// the cache untouched — never a partial eviction.
    pub fn admit(&mut self, id: u64, bytes: u64, weight: f64, ancestors: &[u64]) -> AdmitOutcome {
        if self.entries.contains_key(&id) {
            self.touch(id, weight);
            return AdmitOutcome {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        if bytes > self.capacity {
            return AdmitOutcome {
                admitted: false,
                evicted: Vec::new(),
            };
        }
        let mut victims: Vec<(u64, u64)> = Vec::new();
        let mut need = (self.used + bytes).saturating_sub(self.capacity);
        if need > 0 {
            let pinned = self.pinned_ids();
            let mut candidates: Vec<(&u64, &CacheEntry)> = self
                .entries
                .iter()
                .filter(|(eid, _)| !pinned.contains(eid))
                .collect();
            candidates.sort_by(|a, b| {
                a.1.weight
                    .total_cmp(&b.1.weight)
                    .then(a.1.seq.cmp(&b.1.seq))
            });
            for (eid, e) in candidates {
                if need == 0 {
                    break;
                }
                if e.weight > weight {
                    // Remaining victims are all at least this valuable:
                    // the candidate does not earn its slot.
                    break;
                }
                victims.push((*eid, e.bytes));
                need = need.saturating_sub(e.bytes);
            }
            if need > 0 {
                return AdmitOutcome {
                    admitted: false,
                    evicted: Vec::new(),
                };
            }
        }
        for (vid, _) in &victims {
            self.remove(*vid);
        }
        self.seq += 1;
        self.used += bytes;
        self.entries.insert(
            id,
            CacheEntry {
                bytes,
                weight,
                seq: self.seq,
                ancestors: ancestors.iter().copied().filter(|a| *a != id).collect(),
            },
        );
        AdmitOutcome {
            admitted: true,
            evicted: victims,
        }
    }

    /// Force-removes `id` (e.g. the blob was deleted from the backing
    /// store), returning its resident size. Unlike eviction this ignores
    /// pinning — a blob gone from the store cannot be kept warm.
    pub fn remove(&mut self, id: u64) -> Option<u64> {
        let e = self.entries.remove(&id)?;
        self.used -= e.bytes;
        Some(e.bytes)
    }
}

/// One priced read through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadPrice {
    /// Link the read traverses (SSD on hit, network on miss).
    pub model: TransferModel,
    /// Bytes billed on that link: nominal from SSD (decompressed at
    /// admission), wire bytes from the store.
    pub billed_bytes: u64,
    /// Decompression CPU charged for this read (0 on hits — the cache
    /// holds decompressed pages).
    pub decompress_us: f64,
    /// Whether the SSD tier served it.
    pub hit: bool,
}

/// A priced restore download (the provisioning-path fetch of a snapshot
/// or its composed working set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownloadPrice {
    /// Wall-clock µs for transfer plus any decompression.
    pub transfer_us: f64,
    /// Nominal bytes to account as downloaded (the working set under the
    /// composed path, the full chain otherwise) — callers feed this to
    /// `nominal_bytes_downloaded` so the byte-conservation law holds
    /// unchanged.
    pub accounted_nominal: u64,
    /// Whether the SSD tier served it.
    pub cache_hit: bool,
    /// Whether the composed working-set path was taken.
    pub composed: bool,
}

/// A restore-download pricing request.
#[derive(Debug, Clone, Copy)]
pub struct DownloadRequest<'a> {
    /// Leaf snapshot id.
    pub id: u64,
    /// Nominal bytes of the full composed chain.
    pub chain_nominal: u64,
    /// Number of chain links (1 = full snapshot).
    pub chain_len: usize,
    /// Content hash of the leaf payload (compression seed).
    pub seed: u64,
    /// θ-weight of the snapshot (cache admission priority).
    pub weight: f64,
    /// Recorded working set `(nominal_bytes, pages)`, when known.
    pub working_set: Option<(u64, usize)>,
    /// Chain ancestor ids under the leaf (pinned alongside it).
    pub ancestors: &'a [u64],
}

/// The pricing facade over cache + compression + composed prefetch.
///
/// Holds the node-local [`CacheTier`] (if configured) and the
/// [`StorageStats`] for the run. All methods are deterministic.
#[derive(Debug, Clone)]
pub struct StorageTier {
    policy: StoragePolicy,
    network: TransferModel,
    cache: Option<CacheTier>,
    stats: StorageStats,
}

impl StorageTier {
    /// Builds a tier for `policy` over the given object-store link.
    pub fn new(policy: StoragePolicy, network: TransferModel) -> Self {
        StorageTier {
            policy,
            network,
            cache: policy.cache.map(|c| CacheTier::new(c.capacity_bytes)),
            stats: StorageStats::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &StoragePolicy {
        &self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// The cache tier, if configured.
    pub fn cache(&self) -> Option<&CacheTier> {
        self.cache.as_ref()
    }

    /// Whether `id` is resident on the local SSD.
    pub fn resident(&self, id: u64) -> bool {
        self.cache.as_ref().is_some_and(|c| c.contains(id))
    }

    /// Wire size of `nominal` content bytes (identity without
    /// compression).
    pub fn wire_bytes(&self, nominal: u64, seed: u64) -> u64 {
        if self.policy.compression {
            compress::wire_bytes(nominal, seed)
        } else {
            nominal
        }
    }

    /// Decompression CPU for `nominal` bytes fetched from the store (0
    /// without compression).
    pub fn decompress_cost_us(&self, nominal: u64) -> f64 {
        if self.policy.compression {
            compress::decompress_us(nominal)
        } else {
            0.0
        }
    }

    /// Prices a read of `nominal` bytes belonging to blob `id` and
    /// records hit/miss + wire statistics. The cache holds decompressed
    /// pages, so hits bill nominal bytes on the SSD link with no CPU
    /// cost; misses bill wire bytes on the network plus decompression.
    pub fn read(&mut self, id: u64, nominal: u64, seed: u64) -> ReadPrice {
        if self.resident(id) {
            saturating_accumulate("cache_hits", &mut self.stats.cache_hits, 1);
            saturating_accumulate("cache_hit_bytes", &mut self.stats.cache_hit_bytes, nominal);
            if let Some(c) = self.policy.cache.as_ref() {
                return ReadPrice {
                    model: c.ssd,
                    billed_bytes: nominal,
                    decompress_us: 0.0,
                    hit: true,
                };
            }
        }
        let wire = self.wire_bytes(nominal, seed);
        let decompress_us = self.decompress_cost_us(nominal);
        saturating_accumulate("cache_misses", &mut self.stats.cache_misses, 1);
        saturating_accumulate(
            "cache_miss_bytes",
            &mut self.stats.cache_miss_bytes,
            nominal,
        );
        saturating_accumulate(
            "wire_bytes_downloaded",
            &mut self.stats.wire_bytes_downloaded,
            wire,
        );
        self.stats.decompress_us += decompress_us;
        ReadPrice {
            model: self.network,
            billed_bytes: wire,
            decompress_us,
            hit: false,
        }
    }

    /// Prices the provisioning-path download of a restore target.
    ///
    /// Non-composed: a cache hit reads the whole image from SSD in one
    /// batched request; a miss walks the chain serially over the network
    /// (each delta frame names its parent) on wire bytes, then
    /// decompresses. Composed (policy on + working set known): only the
    /// composed chain's touched pages move, in one batched request —
    /// per-page newest-writer resolution is already done by the page
    /// index, so no serial walk and no per-link latency. The fetched
    /// image is admitted to the cache with the snapshot's θ-weight.
    pub fn price_restore_download(&mut self, req: DownloadRequest<'_>) -> DownloadPrice {
        let composed_ws = if self.policy.composed_prefetch {
            req.working_set
        } else {
            None
        };
        let composed = composed_ws.is_some();
        let (nominal, blobs) = match composed_ws {
            Some((ws_bytes, pages)) => (ws_bytes.min(req.chain_nominal), pages.max(1)),
            None => (req.chain_nominal, req.chain_len.max(1)),
        };
        let price = self.read(req.id, nominal, req.seed);
        let transfer_us = if price.hit || composed {
            price.model.batched_transfer_time(price.billed_bytes, blobs)
        } else {
            price.model.chained_transfer_time(price.billed_bytes, blobs)
        };
        if composed {
            saturating_accumulate(
                "composed_prefetches",
                &mut self.stats.composed_prefetches,
                1,
            );
            saturating_accumulate(
                "composed_bytes_saved",
                &mut self.stats.composed_bytes_saved,
                req.chain_nominal.saturating_sub(nominal),
            );
        }
        if !price.hit {
            self.admit(req.id, nominal, req.weight, req.ancestors);
        }
        DownloadPrice {
            transfer_us: transfer_us.as_micros() as f64 + price.decompress_us,
            accounted_nominal: nominal,
            cache_hit: price.hit,
            composed,
        }
    }

    /// Prices a checkpoint upload of `nominal` bytes: compression CPU (if
    /// enabled) plus wire bytes over the network link. The fresh blob is
    /// admitted write-through — the checkpointing node just held it.
    /// Returns wall-clock µs; nominal upload accounting is unchanged and
    /// stays with the caller.
    pub fn price_upload(&mut self, id: u64, nominal: u64, seed: u64, weight: f64) -> f64 {
        let wire = self.wire_bytes(nominal, seed);
        let compress_us = if self.policy.compression {
            compress::compress_us(nominal)
        } else {
            0.0
        };
        saturating_accumulate(
            "wire_bytes_uploaded",
            &mut self.stats.wire_bytes_uploaded,
            wire,
        );
        self.stats.compress_us += compress_us;
        self.admit(id, nominal, weight, &[]);
        self.network.transfer_time(wire).as_micros() as f64 + compress_us
    }

    /// Prices fetching a remote node's composed image over `remote` as a
    /// single batched request on wire bytes — the decomposed alternative
    /// to re-walking the delta chain serially across the cluster link.
    /// Pure: whether the fetch actually happens (the access may be a
    /// local hit) is the blob directory's call; admit separately on miss.
    pub fn price_remote_fetch(
        &self,
        nominal: u64,
        seed: u64,
        remote: &TransferModel,
    ) -> SimDuration {
        remote.batched_transfer_time(self.wire_bytes(nominal, seed), 1)
    }

    /// Admits `id` into the cache (if configured), recording stats.
    pub fn admit(&mut self, id: u64, nominal: u64, weight: f64, ancestors: &[u64]) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        let outcome = cache.admit(id, nominal, weight, ancestors);
        if outcome.admitted {
            saturating_accumulate("cache_admits", &mut self.stats.cache_admits, 1);
        } else {
            saturating_accumulate("cache_rejects", &mut self.stats.cache_rejects, 1);
        }
        for (_, bytes) in outcome.evicted {
            saturating_accumulate("cache_evictions", &mut self.stats.cache_evictions, 1);
            saturating_accumulate(
                "cache_evicted_bytes",
                &mut self.stats.cache_evicted_bytes,
                bytes,
            );
        }
    }

    /// Drops `id` from the cache — the backing blob was deleted from the
    /// pool, so SSD residency must not outlive it.
    pub fn release(&mut self, id: u64) {
        if let Some(cache) = self.cache.as_mut() {
            cache.remove(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_and_enablement() {
        assert!(!StoragePolicy::disabled().enabled());
        assert_eq!(StoragePolicy::disabled().label(), "flat");
        let p = StoragePolicy::disabled().with_cache().with_compression();
        assert!(p.enabled());
        assert_eq!(p.label(), "cache+compress");
        assert_eq!(
            StoragePolicy::disabled().with_composed_prefetch().label(),
            "composed"
        );
    }

    #[test]
    fn cache_admits_within_capacity_and_tracks_usage() {
        let mut c = CacheTier::new(100);
        assert!(c.admit(1, 60, 1.0, &[]).admitted);
        assert!(c.admit(2, 40, 1.0, &[]).admitted);
        assert_eq!(c.used(), 100);
        assert_eq!(c.len(), 2);
        assert!(c.contains(1) && c.contains(2));
        // Larger than capacity is refused outright.
        assert!(!c.admit(3, 101, 9.0, &[]).admitted);
    }

    #[test]
    fn eviction_prefers_lowest_weight_then_oldest() {
        let mut c = CacheTier::new(100);
        c.admit(1, 50, 0.2, &[]);
        c.admit(2, 50, 0.9, &[]);
        let out = c.admit(3, 50, 0.5, &[]);
        assert!(out.admitted);
        assert_eq!(out.evicted, vec![(1, 50)]);
        assert!(c.contains(2) && c.contains(3) && !c.contains(1));
    }

    #[test]
    fn low_weight_candidate_is_rejected_not_partially_admitted() {
        let mut c = CacheTier::new(100);
        c.admit(1, 50, 0.8, &[]);
        c.admit(2, 50, 0.9, &[]);
        let out = c.admit(3, 50, 0.1, &[]);
        assert!(!out.admitted);
        assert!(out.evicted.is_empty());
        assert_eq!(c.used(), 100, "reject leaves the cache untouched");
    }

    #[test]
    fn pinned_chain_ancestors_survive_eviction_pressure() {
        let mut c = CacheTier::new(100);
        c.admit(10, 40, 0.1, &[]); // parent delta, low weight
        c.admit(11, 40, 0.9, &[10]); // leaf pins 10
        assert_eq!(c.pinned_ids().into_iter().collect::<Vec<_>>(), vec![10]);
        assert_eq!(c.refcount(10), 1);
        // Without pinning, 10 (weight 0.1 < 0.5) would be the victim;
        // pinned, it is skipped, and the only other victim (the leaf,
        // weight 0.9) outweighs the candidate — admission is refused.
        let out = c.admit(12, 40, 0.5, &[]);
        assert!(!out.admitted);
        assert!(c.contains(10));
        // Remove the leaf: 10 unpins and can now be displaced.
        c.remove(11);
        assert!(c.pinned_ids().is_empty());
        let out = c.admit(12, 80, 0.5, &[]);
        assert!(out.admitted);
        assert!(!c.contains(10));
    }

    #[test]
    fn tier_read_prices_hit_on_ssd_and_miss_on_network() {
        let policy = StoragePolicy::disabled().with_cache().with_compression();
        let mut t = StorageTier::new(policy, TransferModel::default());
        let miss = t.read(7, 1 << 20, 42);
        assert!(!miss.hit);
        assert_eq!(miss.billed_bytes, compress::wire_bytes(1 << 20, 42));
        assert!(miss.decompress_us > 0.0);
        t.admit(7, 1 << 20, 1.0, &[]);
        let hit = t.read(7, 1 << 20, 42);
        assert!(hit.hit);
        assert_eq!(hit.billed_bytes, 1 << 20, "SSD serves decompressed bytes");
        assert_eq!(hit.decompress_us, 0.0);
        assert_eq!(t.stats().cache_hits, 1);
        assert_eq!(t.stats().cache_misses, 1);
        assert_eq!(t.stats().cache_hit_bytes, 1 << 20);
        assert_eq!(
            t.stats().wire_bytes_downloaded,
            compress::wire_bytes(1 << 20, 42)
        );
    }

    #[test]
    fn composed_download_accounts_working_set_only() {
        let policy = StoragePolicy::disabled()
            .with_cache()
            .with_composed_prefetch();
        let mut t = StorageTier::new(policy, TransferModel::default());
        let price = t.price_restore_download(DownloadRequest {
            id: 3,
            chain_nominal: 10 << 20,
            chain_len: 4,
            seed: 9,
            weight: 1.0,
            working_set: Some((2 << 20, 64)),
            ancestors: &[],
        });
        assert!(price.composed);
        assert_eq!(price.accounted_nominal, 2 << 20);
        assert_eq!(t.stats().composed_prefetches, 1);
        assert_eq!(t.stats().composed_bytes_saved, 8 << 20);
        // Second restore of the same target: SSD hit, cheaper still.
        let again = t.price_restore_download(DownloadRequest {
            id: 3,
            chain_nominal: 10 << 20,
            chain_len: 4,
            seed: 9,
            weight: 1.0,
            working_set: Some((2 << 20, 64)),
            ancestors: &[],
        });
        assert!(again.cache_hit);
        assert!(again.transfer_us < price.transfer_us);
    }

    #[test]
    fn disabled_flags_price_exactly_like_the_flat_store() {
        // A tier with everything off reproduces legacy pricing bit for
        // bit — the platform never builds one, but the equivalence pins
        // the model.
        let mut t = StorageTier::new(StoragePolicy::disabled(), TransferModel::default());
        let price = t.price_restore_download(DownloadRequest {
            id: 1,
            chain_nominal: 5_000_000,
            chain_len: 4,
            seed: 77,
            weight: 0.0,
            working_set: None,
            ancestors: &[],
        });
        let legacy = TransferModel::default().chained_transfer_time(5_000_000, 4);
        assert_eq!(price.transfer_us, legacy.as_micros() as f64);
        assert_eq!(price.accounted_nominal, 5_000_000);
        assert!(!price.cache_hit && !price.composed);
    }

    #[test]
    fn upload_prices_wire_bytes_plus_compression_cpu() {
        let policy = StoragePolicy::disabled().with_compression();
        let mut t = StorageTier::new(policy, TransferModel::default());
        let nominal = 5 << 20;
        let us = t.price_upload(9, nominal, 123, 0.5);
        let wire = compress::wire_bytes(nominal, 123);
        let expect = TransferModel::default().transfer_time(wire).as_micros() as f64
            + compress::compress_us(nominal);
        assert_eq!(us, expect);
        assert_eq!(t.stats().wire_bytes_uploaded, wire);
        assert!(t.stats().compress_us > 0.0);
    }

    #[test]
    fn release_drops_residency() {
        let mut t = StorageTier::new(
            StoragePolicy::disabled().with_cache(),
            TransferModel::default(),
        );
        t.admit(4, 1024, 1.0, &[]);
        assert!(t.resident(4));
        t.release(4);
        assert!(!t.resident(4));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = StorageStats {
            cache_hits: 1,
            cache_hit_bytes: 10,
            wire_bytes_downloaded: 5,
            compress_us: 1.5,
            ..StorageStats::default()
        };
        let b = StorageStats {
            cache_hits: 2,
            cache_hit_bytes: 20,
            wire_bytes_downloaded: 7,
            compress_us: 0.5,
            composed_prefetches: 3,
            ..StorageStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.cache_hit_bytes, 30);
        assert_eq!(a.wire_bytes_downloaded, 12);
        assert_eq!(a.compress_us, 2.0);
        assert_eq!(a.composed_prefetches, 3);
    }
}

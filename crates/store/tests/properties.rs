//! Property-based tests: the object store's accounting invariants hold
//! under arbitrary operation sequences.

#![forbid(unsafe_code)]

use bytes::Bytes;
use pronghorn_store::{ObjectStore, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8, Vec<u8>),
    Get(u8, u8),
    Delete(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0u8..4,
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(b, k, v)| Op::Put(b, k, v)),
        (0u8..4, any::<u8>()).prop_map(|(b, k)| Op::Get(b, k)),
        (0u8..4, any::<u8>()).prop_map(|(b, k)| Op::Delete(b, k)),
    ]
}

proptest! {
    /// Live-byte accounting equals the sum of live objects; cumulative
    /// transfer counters are monotone; peak >= current, always.
    #[test]
    fn accounting_matches_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let store = ObjectStore::new();
        let mut model: HashMap<(u8, u8), Vec<u8>> = HashMap::new();
        let mut last_uploaded = 0u64;
        let mut last_downloaded = 0u64;
        for op in ops {
            match op {
                Op::Put(b, k, v) => {
                    store
                        .put(&format!("b{b}"), &format!("k{k}"), Bytes::from(v.clone()))
                        .unwrap();
                    model.insert((b, k), v);
                }
                Op::Get(b, k) => {
                    let got = store.get(&format!("b{b}"), &format!("k{k}"));
                    match model.get(&(b, k)) {
                        Some(v) => prop_assert_eq!(&got.unwrap()[..], v.as_slice()),
                        None => prop_assert_eq!(got.unwrap_err(), StoreError::NotFound),
                    }
                }
                Op::Delete(b, k) => {
                    let outcome = store.delete(&format!("b{b}"), &format!("k{k}"));
                    prop_assert_eq!(outcome.is_ok(), model.remove(&(b, k)).is_some());
                }
            }
            let stats = store.stats();
            let live: u64 = model.values().map(|v| v.len() as u64).sum();
            prop_assert_eq!(stats.bytes_stored, live);
            prop_assert_eq!(stats.objects as usize, model.len());
            prop_assert!(stats.peak_bytes_stored >= stats.bytes_stored);
            prop_assert!(stats.bytes_uploaded >= last_uploaded);
            prop_assert!(stats.bytes_downloaded >= last_downloaded);
            last_uploaded = stats.bytes_uploaded;
            last_downloaded = stats.bytes_downloaded;
        }
    }

    /// A capacity-bounded store never holds more than its capacity.
    #[test]
    fn capacity_is_never_exceeded(
        ops in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)),
            1..100
        ),
        capacity in 32u64..256,
    ) {
        let store = ObjectStore::with_capacity(capacity);
        for (k, v) in ops {
            let _ = store.put("b", &format!("k{k}"), Bytes::from(v));
            prop_assert!(store.stats().bytes_stored <= capacity);
        }
    }
}

proptest! {
    /// Twin-lineage snapshots (identical payloads, distinct heads/keys)
    /// share one refcounted blob; deleting twins in any order never
    /// corrupts a survivor, and the blob is freed only with the last
    /// reference — the DESIGN.md §7.2 regression guard.
    #[test]
    fn twin_blob_survives_arbitrary_eviction_order(
        payload in prop::collection::vec(any::<u8>(), 1..512),
        twins in 2usize..6,
        order_seed in any::<u64>(),
    ) {
        let store = ObjectStore::new();
        let payload = Bytes::from(payload);
        for i in 0..twins {
            store
                .put_chunked(
                    "pool",
                    &format!("twin{i}"),
                    Bytes::from(format!("head{i}").into_bytes()),
                    payload.clone(),
                    Bytes::from_static(b"tail"),
                )
                .unwrap();
        }
        prop_assert_eq!(store.blob_count(), 1);

        // Deterministic pseudo-shuffled eviction order derived from the seed.
        let mut keys: Vec<usize> = (0..twins).collect();
        let mut s = order_seed;
        for i in (1..keys.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.swap(i, (s >> 33) as usize % (i + 1));
        }
        for (evicted, i) in keys.iter().enumerate() {
            store.delete("pool", &format!("twin{i}")).unwrap();
            for j in &keys[evicted + 1..] {
                let body = store.get("pool", &format!("twin{j}")).unwrap();
                let expect: Vec<u8> = format!("head{j}")
                    .into_bytes()
                    .into_iter()
                    .chain(payload.iter().copied())
                    .chain(b"tail".iter().copied())
                    .collect();
                prop_assert_eq!(body.as_ref(), expect.as_slice());
            }
            let expect_blobs = if evicted + 1 < twins { 1 } else { 0 };
            prop_assert_eq!(store.blob_count(), expect_blobs);
        }
    }
}

proptest! {
    /// Chain-index refcount invariant: build an arbitrary forest of
    /// snapshot chains (roots and deltas, including multi-child parents),
    /// then evict every node in an arbitrary order. Every blob must be
    /// freed exactly once — immediately for leaves, deferred through
    /// cascade frees for pinned parents — and the index must drain to
    /// zero tracked nodes and zero pinned bytes.
    #[test]
    fn chain_refcounts_drain_to_zero(
        shapes in prop::collection::vec((any::<bool>(), any::<u16>(), 1u64..1_000), 1..48),
        order_seed in any::<u64>(),
    ) {
        use pronghorn_store::ChainIndex;
        let mut index = ChainIndex::new();
        let mut ids: Vec<u64> = Vec::new();
        for (i, (root, parent_sel, nominal)) in shapes.iter().enumerate() {
            let id = i as u64 + 1;
            if *root || ids.is_empty() {
                index.insert_root(id, *nominal);
            } else {
                let parent = ids[usize::from(*parent_sel) % ids.len()];
                prop_assert!(index.insert_delta(id, parent, *nominal).is_some());
            }
            ids.push(id);
        }
        // Deterministic pseudo-shuffled eviction order from the seed.
        let mut keys = ids.clone();
        let mut s = order_seed;
        for i in (1..keys.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut freed: Vec<u64> = Vec::new();
        for id in keys {
            freed.extend(index.evict(id));
        }
        freed.sort_unstable();
        let mut expect = ids.clone();
        expect.sort_unstable();
        prop_assert_eq!(freed, expect);
        prop_assert_eq!(index.tracked_count(), 0);
        prop_assert_eq!(index.live_count(), 0);
        prop_assert_eq!(index.pinned_nominal_bytes(), 0);
    }
}

//! Property-based tests: the object store's accounting invariants hold
//! under arbitrary operation sequences.

use bytes::Bytes;
use pronghorn_store::{ObjectStore, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8, Vec<u8>),
    Get(u8, u8),
    Delete(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, any::<u8>(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(b, k, v)| Op::Put(b, k, v)),
        (0u8..4, any::<u8>()).prop_map(|(b, k)| Op::Get(b, k)),
        (0u8..4, any::<u8>()).prop_map(|(b, k)| Op::Delete(b, k)),
    ]
}

proptest! {
    /// Live-byte accounting equals the sum of live objects; cumulative
    /// transfer counters are monotone; peak >= current, always.
    #[test]
    fn accounting_matches_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let store = ObjectStore::new();
        let mut model: HashMap<(u8, u8), Vec<u8>> = HashMap::new();
        let mut last_uploaded = 0u64;
        let mut last_downloaded = 0u64;
        for op in ops {
            match op {
                Op::Put(b, k, v) => {
                    store
                        .put(&format!("b{b}"), &format!("k{k}"), Bytes::from(v.clone()))
                        .unwrap();
                    model.insert((b, k), v);
                }
                Op::Get(b, k) => {
                    let got = store.get(&format!("b{b}"), &format!("k{k}"));
                    match model.get(&(b, k)) {
                        Some(v) => prop_assert_eq!(&got.unwrap()[..], v.as_slice()),
                        None => prop_assert_eq!(got.unwrap_err(), StoreError::NotFound),
                    }
                }
                Op::Delete(b, k) => {
                    let outcome = store.delete(&format!("b{b}"), &format!("k{k}"));
                    prop_assert_eq!(outcome.is_ok(), model.remove(&(b, k)).is_some());
                }
            }
            let stats = store.stats();
            let live: u64 = model.values().map(|v| v.len() as u64).sum();
            prop_assert_eq!(stats.bytes_stored, live);
            prop_assert_eq!(stats.objects as usize, model.len());
            prop_assert!(stats.peak_bytes_stored >= stats.bytes_stored);
            prop_assert!(stats.bytes_uploaded >= last_uploaded);
            prop_assert!(stats.bytes_downloaded >= last_downloaded);
            last_uploaded = stats.bytes_uploaded;
            last_downloaded = stats.bytes_downloaded;
        }
    }

    /// A capacity-bounded store never holds more than its capacity.
    #[test]
    fn capacity_is_never_exceeded(
        ops in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)),
            1..100
        ),
        capacity in 32u64..256,
    ) {
        let store = ObjectStore::with_capacity(capacity);
        for (k, v) in ops {
            let _ = store.put("b", &format!("k{k}"), Bytes::from(v));
            prop_assert!(store.stats().bytes_stored <= capacity);
        }
    }
}

//! Property-based tests: the SSD cache tier's admission/eviction
//! invariants and the compression model's round-trip exactness hold
//! under arbitrary operation sequences.

#![forbid(unsafe_code)]

use pronghorn_store::compress;
use pronghorn_store::CacheTier;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Admit blob `id` of `bytes` at `weight`, pinning `ancestors`.
    Admit(u8, u16, u8, Vec<u8>),
    /// Touch blob `id`, refreshing its weight.
    Touch(u8, u8),
    /// Force-remove blob `id`.
    Remove(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0u8..24,
            1u16..512,
            any::<u8>(),
            prop::collection::vec(0u8..24, 0..3)
        )
            .prop_map(|(id, bytes, w, anc)| Op::Admit(id, bytes, w, anc)),
        (0u8..24, any::<u8>()).prop_map(|(id, w)| Op::Touch(id, w)),
        (0u8..24).prop_map(Op::Remove),
    ]
}

proptest! {
    /// Under arbitrary admit/touch/remove sequences: used bytes equal the
    /// sum of resident entries and never exceed capacity; an eviction
    /// never removes a pinned chain ancestor (a blob some other resident
    /// entry depends on); and every eviction's byte count matches what
    /// the entry held — refcounts are conserved.
    #[test]
    fn cache_conserves_bytes_and_never_evicts_pinned(
        ops in prop::collection::vec(op_strategy(), 0..120),
        capacity in 256u64..2048,
    ) {
        let mut cache = CacheTier::new(capacity);
        for op in ops {
            match op {
                Op::Admit(id, bytes, w, anc) => {
                    let ancestors: Vec<u64> =
                        anc.iter().map(|&a| u64::from(a)).filter(|&a| a != u64::from(id)).collect();
                    let pinned_before = cache.pinned_ids();
                    let sized: Vec<(u64, u64)> = cache
                        .resident_ids()
                        .iter()
                        .map(|&r| (r, cache.bytes_of(r).unwrap()))
                        .collect();
                    let outcome = cache.admit(
                        u64::from(id),
                        u64::from(bytes),
                        f64::from(w),
                        &ancestors,
                    );
                    for (victim, freed) in &outcome.evicted {
                        // A pinned ancestor is never an eviction victim.
                        prop_assert!(
                            !pinned_before.contains(victim),
                            "evicted pinned ancestor {victim}"
                        );
                        // The freed byte count is exactly what it held.
                        let held = sized.iter().find(|(r, _)| r == victim).map(|(_, b)| *b);
                        prop_assert_eq!(held, Some(*freed));
                    }
                    if outcome.admitted {
                        prop_assert!(cache.contains(u64::from(id)));
                    }
                }
                Op::Touch(id, w) => cache.touch(u64::from(id), f64::from(w)),
                Op::Remove(id) => {
                    let held = cache.bytes_of(u64::from(id));
                    let freed = cache.remove(u64::from(id));
                    prop_assert_eq!(freed, held);
                    prop_assert!(!cache.contains(u64::from(id)));
                }
            }
            // Conservation: used == sum of resident entry sizes <= capacity.
            let resident_sum: u64 = cache
                .resident_ids()
                .iter()
                .map(|&r| cache.bytes_of(r).unwrap())
                .sum();
            prop_assert_eq!(cache.used(), resident_sum);
            prop_assert!(cache.used() <= cache.capacity());
            prop_assert_eq!(cache.len(), cache.resident_ids().len());
            // Refcount consistency: a blob is pinned iff some other
            // resident entry lists it as an ancestor.
            for &r in &cache.resident_ids() {
                let pinned = cache.pinned_ids().contains(&r);
                prop_assert_eq!(pinned, cache.refcount(r) > 0);
            }
        }
    }

    /// Compress → decompress round-trips the nominal byte count exactly,
    /// for every payload size and seed; the wire form never exceeds the
    /// nominal form and is deterministic in the seed.
    #[test]
    fn compression_round_trips_exactly(nominal in 0u64..=1u64 << 40, seed in any::<u64>()) {
        let c = compress::compress(nominal, seed);
        prop_assert_eq!(c.nominal, nominal);
        prop_assert_eq!(compress::decompress(&c), nominal);
        prop_assert!(c.wire <= nominal);
        if nominal > 0 {
            prop_assert!(c.wire >= 1);
        }
        // Deterministic: same seed, same wire bytes.
        prop_assert_eq!(compress::compress(nominal, seed).wire, c.wire);
        // The modeled ratio stays inside the configured band.
        let ratio = compress::ratio_pct(seed);
        prop_assert!((compress::MIN_RATIO_PCT..=compress::MAX_RATIO_PCT).contains(&ratio));
    }
}

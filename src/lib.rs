//! # Pronghorn
//!
//! A from-scratch Rust reproduction of **"Pronghorn: Effective Checkpoint
//! Orchestration for Serverless Hot-Starts"** (EuroSys '24).
//!
//! Pronghorn is a snapshot orchestrator for serverless platforms: it
//! learns, per function, *when* during a worker's lifetime to take a
//! checkpoint and *which* snapshot to restore new workers from, so that
//! workers start with JIT-optimized code instead of re-warming from
//! scratch after every eviction.
//!
//! This crate is a facade re-exporting the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the request-centric orchestration policy (Algorithm 1), baselines, pool, orchestrator |
//! | [`jit`] | the tiered-JIT language-runtime simulator (JVM/PyPy profiles) |
//! | [`workloads`] | the 14 benchmark kernels of Tables 1 & 3, implemented for real |
//! | [`platform`] | the serverless-platform simulator (closed-loop + trace-driven runners) |
//! | [`forecast`] | arrival forecasting and the predictive pre-restore provisioning policy |
//! | [`cluster`] | the N-node cluster layer: consistent-hash ring, cluster spec, blob residency |
//! | [`checkpoint`] | the CRIU-calibrated checkpoint engine and snapshot format |
//! | [`store`] / [`kv`] | the Object Store (MinIO) and Database substrates |
//! | [`traces`] | synthetic Azure-like invocation traces |
//! | [`metrics`] | CDFs, quantiles, EWMA, convergence detection |
//! | [`sim`] | virtual clock, event queue, deterministic RNG streams |
//! | [`experiments`] | regenerators for every table and figure of the paper |
//!
//! # Quick start
//!
//! ```
//! use pronghorn::prelude::*;
//!
//! // Run the paper's protocol: DynamicHTML under the request-centric
//! // policy, workers evicted after every request.
//! let workload = by_name("DynamicHTML").expect("bundled benchmark");
//! let config = RunConfig::paper(PolicyKind::RequestCentric, 1, 42).with_invocations(100);
//! let result = run_closed_loop(&workload, &config);
//! assert_eq!(result.latencies_us.len(), 100);
//! println!("median latency: {:.0}µs", result.median_us());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pronghorn_checkpoint as checkpoint;
pub use pronghorn_cluster as cluster;
pub use pronghorn_core as core;
pub use pronghorn_experiments as experiments;
pub use pronghorn_forecast as forecast;
pub use pronghorn_jit as jit;
pub use pronghorn_kv as kv;
pub use pronghorn_metrics as metrics;
pub use pronghorn_platform as platform;
pub use pronghorn_sim as sim;
pub use pronghorn_store as store;
pub use pronghorn_traces as traces;
pub use pronghorn_workloads as workloads;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use pronghorn_cluster::{ClusterSpec, PlacementPolicy, RoutingPolicy};
    pub use pronghorn_core::{
        CheckpointAfterFirstPolicy, ColdStartPolicy, Orchestrator, Policy, PolicyConfig,
        PolicyKind, RequestCentricPolicy, StartDecision,
    };
    pub use pronghorn_forecast::{ForecasterKind, ProvisionPolicy, ProvisionStats};
    pub use pronghorn_jit::{Runtime, RuntimeKind, RuntimeProfile};
    pub use pronghorn_metrics::{Cdf, Quantiles, Summary};
    pub use pronghorn_platform::{
        run_closed_loop, run_cluster, run_production, run_trace, ClusterRunResult, RunConfig,
        RunResult,
    };
    pub use pronghorn_sim::{RngFactory, SimDuration, SimTime};
    pub use pronghorn_store::{CacheConfig, StoragePolicy, StorageStats};
    pub use pronghorn_traces::TraceSpec;
    pub use pronghorn_workloads::{by_name, evaluation_benchmarks, InputVariance, Workload};
}

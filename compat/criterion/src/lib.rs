//! Workspace-local, offline subset of the `criterion` API.
//!
//! Benchmarks really measure wall-clock time: each `bench_function`
//! calibrates an iteration count, takes several timed samples, and
//! reports the best per-iteration time (plus MB/s when a
//! [`Throughput`] was declared on the group).
//!
//! When the `PRONGHORN_BENCH_JSON` environment variable names a file,
//! every result is appended to it as one JSON object per line — the
//! hook `scripts/bench_codec.sh` uses to assemble `BENCH_grid.json`.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared work per iteration, used to derive throughput rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// setup is always excluded from timing here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            target_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            target_time: self.target_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let target_time = self.target_time;
        run_benchmark("", id, sample_size, target_time, None, f);
        self
    }
}

/// A named group sharing throughput and sample-count settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    target_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_time = t;
        self
    }

    /// Declares the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &self.name,
            &id.into(),
            self.sample_size,
            self.target_time,
            self.throughput,
            f,
        );
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; records what to measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    target_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibration: one iteration to estimate per-iter cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let warmup_ns = bencher.elapsed.as_nanos().max(1);
    let budget_ns = target_time.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget_ns / warmup_ns).clamp(1, 1_000_000) as u64;

    // Timed samples; report the minimum (least-noise) per-iter time.
    let mut best_ns = f64::INFINITY;
    for _ in 0..sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
        if per_iter < best_ns {
            best_ns = per_iter;
        }
    }

    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut line = format!("bench: {label:<48} {}/iter", format_ns(best_ns));
    let mut rate = None;
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Bytes(n) => (n as f64, "MB/s"),
            Throughput::Elements(n) => (n as f64, "Melem/s"),
        };
        let per_sec = amount / (best_ns / 1e9) / 1e6;
        rate = Some((amount, per_sec));
        let _ = write!(line, "  ({per_sec:.1} {unit})");
    }
    println!("{line}");

    if let Ok(path) = std::env::var("PRONGHORN_BENCH_JSON") {
        if !path.is_empty() {
            let mut json = format!(
                "{{\"group\":{:?},\"bench\":{:?},\"ns_per_iter\":{:.1}",
                group, id, best_ns
            );
            if let Some((amount, per_sec)) = rate {
                let _ = write!(
                    json,
                    ",\"work_per_iter\":{amount},\"rate_m_per_s\":{per_sec:.2}"
                );
            }
            json.push('}');
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(file, "{json}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_plausible_time() {
        let mut c = Criterion {
            sample_size: 3,
            target_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("compat");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}

//! Workspace-local, offline subset of the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view into a shared,
//! immutable byte buffer. Cloning and slicing are O(1) reference-count
//! operations on one `Arc`-backed allocation — the zero-copy property the
//! snapshot fast path relies on.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, shareable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into new shared storage.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new `Bytes` viewing `range` of this one, sharing the
    /// same underlying storage (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let finish = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= finish && finish <= len,
            "slice range {begin}..{finish} out of bounds for Bytes of length {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + finish,
        }
    }

    /// Copies the viewed bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "...; len={}", self.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1..4);
        assert_eq!(Arc::strong_count(&b.data), 3);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(c, b);
    }

    #[test]
    fn slice_of_slice_composes() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = b.slice(2..8).slice(1..=2);
        assert_eq!(&s[..], &[3, 4]);
        assert_eq!(b.slice(..).len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1]).slice(0..2);
    }

    #[test]
    fn equality_and_conversions() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, Bytes::copy_from_slice(b"abc"));
        assert_eq!(b.to_vec(), b"abc".to_vec());
        assert_eq!(b, b"abc"[..]);
        assert!(Bytes::new().is_empty());
    }
}

//! Workspace-local, offline subset of the `parking_lot` API.
//!
//! Backed by `std::sync` primitives. Like real `parking_lot`, the locks
//! do not poison: a panic while holding a guard leaves the lock usable,
//! implemented here by unwrapping `PoisonError` into the inner guard.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn default_builds_empty_state() {
        let m: Mutex<u32> = Mutex::default();
        assert_eq!(*m.lock(), 0);
    }
}

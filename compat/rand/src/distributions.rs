//! Value distributions, mirroring `rand::distributions`.

use crate::RngCore;
use std::marker::PhantomData;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution over a type's full value range
/// (floats: uniform in `[0, 1)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$method() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Iterator of samples, returned by [`crate::Rng::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_sample_range {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + (self.end - self.start) * crate::unit_f64(rng);
            // Rounding can push the product onto the excluded upper bound.
            if v < self.end {
                v
            } else {
                self.end.next_down().max(self.start)
            }
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            lo + (hi - lo) * crate::unit_f64(rng)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + (self.end - self.start) * crate::unit_f64(rng) as f32;
            if v < self.end {
                v
            } else {
                self.end.next_down().max(self.start)
            }
        }
    }
}

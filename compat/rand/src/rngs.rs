//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++, the same
/// algorithm `rand` 0.8's `SmallRng` uses on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

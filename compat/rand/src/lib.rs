//! Workspace-local, offline subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact surface it uses: [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`rngs::SmallRng`] (xoshiro256++, the same generator
//! real `rand` 0.8 uses for `SmallRng` on 64-bit targets),
//! [`distributions::Standard`], and [`seq::SliceRandom`]. Everything is
//! deterministic and dependency-free; nothing here is cryptographic.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::DistIter;

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be reproducibly seeded.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives full seed material from a single `u64` with a PCG32
    /// stream, matching the scheme `rand_core` 0.6 uses.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&word.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Draws a `f64` uniformly from `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        unit_f64(self) < p
    }

    /// Samples a value from `distr`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Turns this generator into an iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        let lo: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        assert!(lo > 0.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: u64 = dyn_rng.gen_range(0..5u64);
        assert!(v < 5);
        let _: u64 = dyn_rng.gen();
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

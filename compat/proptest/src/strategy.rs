//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F, U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            f,
            _marker: PhantomData,
        }
    }

    /// Type-erases the strategy for heterogeneous collections
    /// (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F, U> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> U>,
}

impl<S, F, U> Strategy for Map<S, F, U>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

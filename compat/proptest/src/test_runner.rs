//! Deterministic case generation.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The generator handed to strategies: SplitMix64, seeded per
/// (test name, case index) so every run regenerates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` once per case with a per-case deterministic generator.
pub fn run_cases(config: &ProptestConfig, test_name: &str, body: impl Fn(&mut TestRng)) {
    let base = fnv1a(test_name.as_bytes());
    for case in 0..u64::from(config.cases) {
        let mut rng =
            TestRng::from_seed(base.wrapping_add(case.wrapping_mul(0x2545_f491_4f6c_dd1d)));
        body(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::from_seed(3);
        let mut b = TestRng::from_seed(3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(TestRng::from_seed(4).next_u64(), b.next_u64());
    }

    #[test]
    fn run_cases_runs_exact_count() {
        let counter = std::cell::Cell::new(0u32);
        run_cases(&ProptestConfig::with_cases(17), "t", |_| {
            counter.set(counter.get() + 1);
        });
        assert_eq!(counter.get(), 17);
    }
}

//! String-pattern strategies: `"[a-z]{1,8}"` etc. as `Strategy<Value = String>`.
//!
//! Supports the tiny regex subset the workspace's tests use: a sequence
//! of atoms (`.`, a `[...]` character class with ranges, or a literal
//! character) each followed by an optional `{n}` / `{lo,hi}` quantifier.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

enum Atom {
    /// `.` — any printable ASCII character.
    Any,
    /// A set of candidate characters from a `[...]` class or a literal.
    Set(Vec<char>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Any => char::from(0x20 + rng.below(0x7f - 0x20) as u8),
            Atom::Set(chars) => chars[rng.below(chars.len())],
        }
    }
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "inverted class range {lo}-{hi}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated character class");
    (set, i + 1)
}

fn parse_quantifier(chars: &[char], mut i: usize) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    i += 1;
    let mut nums = vec![String::new()];
    while i < chars.len() && chars[i] != '}' {
        if chars[i] == ',' {
            nums.push(String::new());
        } else {
            nums.last_mut().unwrap().push(chars[i]);
        }
        i += 1;
    }
    assert!(i < chars.len(), "unterminated quantifier");
    let lo: usize = nums[0].parse().expect("quantifier bound");
    let hi = if nums.len() > 1 {
        nums[1].parse().expect("quantifier bound")
    } else {
        lo
    };
    assert!(lo <= hi, "inverted quantifier {lo},{hi}");
    (lo, hi, i + 1)
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (atom, next) = match chars[i] {
            '.' => (Atom::Any, i + 1),
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                (Atom::Set(set), next)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape");
                (Atom::Set(vec![chars[i + 1]]), i + 2)
            }
            c => (Atom::Set(vec![c]), i + 1),
        };
        let (lo, hi, next) = parse_quantifier(&chars, next);
        let n = lo + rng.below(hi - lo + 1);
        for _ in 0..n {
            out.push(atom.sample(rng));
        }
        i = next;
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn class_patterns_respect_alphabet_and_length() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_pattern("[a-z]{1,8}", &mut r);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn mixed_class_with_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_pattern("[a-zA-Z0-9_-]{1,32}", &mut r);
            assert!((1..=32).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn dot_pattern_allows_empty() {
        let mut r = rng();
        let mut saw_empty = false;
        for _ in 0..300 {
            let s = generate_pattern(".{0,2}", &mut r);
            assert!(s.len() <= 2);
            saw_empty |= s.is_empty();
        }
        assert!(saw_empty);
    }

    #[test]
    fn literals_pass_through() {
        let mut r = rng();
        assert_eq!(generate_pattern("abc", &mut r), "abc");
    }
}

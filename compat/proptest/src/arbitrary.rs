//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Uniform over finite bit patterns (like proptest's default, NaN
        // and infinities are excluded).
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        loop {
            let v = f32::from_bits(rng.next_u32());
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

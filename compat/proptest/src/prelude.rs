//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

//! Workspace-local, offline subset of the `proptest` API.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`arbitrary::any`], ranges and string patterns as strategies,
//! `prop::collection::vec`, `prop::option::of`, tuples of strategies,
//! [`prop_oneof!`], [`strategy::Just`], and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs in scope. Case generation is deterministic
//! per (test, case index), so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Picks uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            });
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}
